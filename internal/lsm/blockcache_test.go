package lsm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

// TestBlockCacheOps unit-tests the shard accounting: acquire/insert
// pinning, release, LRU eviction under budget pressure, and dropRun
// semantics for pinned (dead) entries.
func TestBlockCacheOps(t *testing.T) {
	items := []index.Item{{Key: adm.Int(1), Val: adm.String("x")}}
	perEntry := itemsSize(items)

	c := NewBlockCache(perEntry * blockCacheShards * 2) // 2 entries per shard
	if _, ok := c.acquire(1, 0); ok {
		t.Fatal("acquire on empty cache hit")
	}
	e := c.insert(1, 0, items)
	st := c.Stats()
	if st.Entries != 1 || st.Pinned != 1 || st.Misses != 1 {
		t.Fatalf("after insert: %+v", st)
	}
	// A second acquire shares the entry and stacks a pin.
	e2, ok := c.acquire(1, 0)
	if !ok || e2 != e {
		t.Fatal("acquire did not return the resident entry")
	}
	c.release(e2)
	c.release(e)
	st = c.Stats()
	if st.Pinned != 0 || st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("after releases: %+v", st)
	}

	// dropRun on an unpinned entry frees it immediately.
	c.dropRun(1)
	if st = c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after dropRun: %+v", st)
	}

	// dropRun while pinned: the entry leaves the cache but its items stay
	// readable until release, and release must not corrupt accounting.
	e = c.insert(2, 0, items)
	c.dropRun(2)
	if st = c.Stats(); st.Entries != 0 || st.Pinned != 0 {
		t.Fatalf("after dropRun of pinned: %+v", st)
	}
	if len(e.items) != 1 || adm.Compare(e.items[0].Key, adm.Int(1)) != 0 {
		t.Fatal("dead entry's items were reclaimed while pinned")
	}
	c.release(e)
	if st = c.Stats(); st.Pinned != 0 || st.Bytes != 0 {
		t.Fatalf("after releasing dead entry: %+v", st)
	}

	// Budget pressure evicts cold unpinned entries; pinned entries are
	// skipped even at the cold end.
	pinned := c.insert(3, 0, items)
	for i := 1; i < 64; i++ {
		c.release(c.insert(3, i, items))
	}
	repin, ok := c.acquire(3, 0)
	if !ok {
		t.Fatal("pinned entry was evicted")
	}
	st = c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under %dx budget pressure: %+v", 64, st)
	}
	c.release(repin)
	c.release(pinned)
}

// TestBlockCacheEvictionPinning proves the retire protocol end to end on
// a real run file: a cursor parked mid-block keeps (a) its cache entry's
// items alive through dropRun and (b) the retired file open until the
// cursor finishes — only then does the file close.
func TestBlockCacheEvictionPinning(t *testing.T) {
	fs := NewMemFS()
	cache := NewBlockCache(1) // clamped to minimum: every insert evicts
	items := make([]index.Item, 600)
	for i := range items {
		items[i] = index.Item{Key: adm.Int(int64(i)), Val: adm.String("payload-payload-payload-payload-payload-payload-payload-payload")}
	}
	rf, err := writeRun(fs, "runs", "pin.run", []*component{{items: items}}, false, runEnv{cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(rf.blocks) < 2 {
		t.Fatalf("need multiple blocks, got %d", len(rf.blocks))
	}

	cur := rf.cursor()
	it, ok := cur.next() // parks the cursor on block 0's pinned entry
	if !ok || adm.Compare(it.Key, items[0].Key) != 0 {
		t.Fatalf("cursor first item = %v,%v", it, ok)
	}

	// Retire the run while the cursor is mid-block: the owner reference
	// drops and the cache entries are dropped, but the file must stay
	// open for the cursor.
	rf.retire()
	if rf.closed.Load() {
		t.Fatal("retired run closed while a cursor is mid-run")
	}

	// The cursor must still drain every item correctly from the retired,
	// cache-dropped run.
	n := 1
	for {
		it, ok := cur.next()
		if !ok {
			break
		}
		if adm.Compare(it.Key, items[n].Key) != 0 {
			t.Fatalf("item %d mismatch after retire", n)
		}
		n++
	}
	if n != len(items) {
		t.Fatalf("drained %d items, want %d", n, len(items))
	}
	// Exhaustion auto-closes the cursor, releasing the last reference.
	if !rf.closed.Load() {
		t.Fatal("retired run still open after its last cursor finished")
	}
	if st := cache.Stats(); st.Pinned != 0 {
		t.Fatalf("leaked pins: %+v", st)
	}
}

// diffOp drives one deterministic mixed workload step.
func diffKey(r *rand.Rand, space int64) adm.Value { return adm.Int(r.Int63n(space)) }

func diffRec(k adm.Value, v int64) adm.Value {
	return adm.ObjectValue(adm.ObjectFromPairs("pk", k, "v", adm.Int(v), "pad", adm.String("pppppppppppppppppppppppppppppppp")))
}

// TestBlockCacheDifferential runs the same randomized workload — point
// gets and full scans interleaved with upserts, deletes, and forced
// flushes (with compactions triggering naturally) — against three
// stores: a tiny-budget cached partition (evictions constantly), an
// uncached partition, and a shadow map. All three must agree at every
// checkpoint, and the cached partition must agree again after a clean
// reopen.
func TestBlockCacheDifferential(t *testing.T) {
	const keySpace = 512
	opts := func(cache *BlockCache) Options {
		return Options{MemBudget: 4 << 10, MaxComponents: 6, WALSegBytes: 16 << 10, BlockCache: cache}
	}
	cache := NewBlockCache(8 << 10) // a few blocks; constant eviction
	fsOn, fsOff := NewMemFS(), NewMemFS()
	pOn, err := OpenPartition(fsOn, "part", opts(cache))
	if err != nil {
		t.Fatal(err)
	}
	pOff, err := OpenPartition(fsOff, "part", opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	shadow := make(map[int64]int64)

	r := rand.New(rand.NewSource(1234))
	version := int64(0)
	checkKey := func(k adm.Value, tag string) {
		t.Helper()
		want, inShadow := shadow[k.IntVal()]
		gotOn, okOn := pOn.Get(k)
		gotOff, okOff := pOff.Get(k)
		if okOn != inShadow || okOff != inShadow {
			t.Fatalf("%s: key %v presence on=%v off=%v shadow=%v", tag, k, okOn, okOff, inShadow)
		}
		if inShadow {
			if gv := gotOn.Field("v").IntVal(); gv != want {
				t.Fatalf("%s: key %v cached value %d, want %d", tag, k, gv, want)
			}
			if gv := gotOff.Field("v").IntVal(); gv != want {
				t.Fatalf("%s: key %v uncached value %d, want %d", tag, k, gv, want)
			}
		}
	}
	checkScan := func(tag string) {
		t.Helper()
		seen := 0
		pOn.Snapshot().Scan(func(k, rec adm.Value) bool {
			want, okS := shadow[k.IntVal()]
			if !okS || rec.Field("v").IntVal() != want {
				t.Fatalf("%s: scan saw key %v = %v (shadow %d,%v)", tag, k, rec, want, okS)
			}
			seen++
			return true
		})
		if seen != len(shadow) {
			t.Fatalf("%s: scan saw %d records, shadow has %d", tag, seen, len(shadow))
		}
	}

	for round := 0; round < 30; round++ {
		for op := 0; op < 40; op++ {
			k := diffKey(r, keySpace)
			switch r.Intn(10) {
			case 0:
				pOn.Delete(k)
				pOff.Delete(k)
				delete(shadow, k.IntVal())
			default:
				version++
				pOn.Upsert(k, diffRec(k, version))
				pOff.Upsert(k, diffRec(k, version))
				shadow[k.IntVal()] = version
			}
		}
		// Random gets every round; flush (and let compaction churn runs)
		// on a cadence so lookups cross memtable, cached runs, and
		// retired-run boundaries.
		for i := 0; i < 20; i++ {
			checkKey(diffKey(r, keySpace*2), fmt.Sprintf("round %d", round)) // 2x space: absent keys probe fences+bloom
		}
		if round%3 == 0 {
			pOn.Flush()
			pOff.Flush()
			if err := pOn.WaitForFlush(); err != nil {
				t.Fatal(err)
			}
			if err := pOff.WaitForFlush(); err != nil {
				t.Fatal(err)
			}
		}
		if round%5 == 0 {
			checkScan(fmt.Sprintf("round %d", round))
		}
	}
	checkScan("final")
	st := pOn.Stats()
	if st.BlockReads == 0 || cache.Stats().Hits == 0 {
		t.Fatalf("workload never exercised the cache: part=%+v cache=%+v", st, cache.Stats())
	}

	// A clean close and reopen (fresh cache) must converge to the same
	// state.
	if err := pOn.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenPartition(fsOn.Crash(), "part", opts(NewBlockCache(8<<10)))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	defer pOff.Close()
	pOn = reopened
	for k, want := range shadow {
		got, ok := pOn.Get(adm.Int(k))
		if !ok || got.Field("v").IntVal() != want {
			t.Fatalf("reopen: key %d = %v,%v want %d", k, got, ok, want)
		}
	}
}

// TestBlockCacheConcurrentReaders hammers one cached partition under the
// race detector: a writer keeps upserting and flushing (so compaction
// retires runs and drops their cache entries) while readers point-look-up
// a sealed key range and walk snapshot cursors, sharing the cache.
func TestBlockCacheConcurrentReaders(t *testing.T) {
	const sealed = 300
	cache := NewBlockCache(16 << 10)
	fs := NewMemFS()
	p, err := OpenPartition(fs, "part", Options{MemBudget: 8 << 10, MaxComponents: 4, WALSegBytes: 16 << 10, BlockCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Seal a key prefix on disk first; its values never change, so
	// readers can assert exact results while the writer churns elsewhere.
	for i := 0; i < sealed; i++ {
		k := adm.Int(int64(i))
		p.Upsert(k, diffRec(k, int64(i)))
	}
	p.Flush()
	if err := p.WaitForFlush(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var writers, readers sync.WaitGroup
	writers.Add(1)
	go func() { // writer: churn a disjoint key range, force flushes
		defer writers.Done()
		v := int64(0)
		for round := 0; ; round++ {
			select {
			case <-done:
				return
			default:
			}
			for i := 0; i < 50; i++ {
				v++
				k := adm.Int(int64(sealed + i%100))
				p.Upsert(k, diffRec(k, v))
			}
			p.Flush()
			if err := p.WaitForFlush(); err != nil {
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			r := rand.New(rand.NewSource(seed))
			for it := 0; it < 400; it++ {
				k := r.Int63n(sealed * 2) // half the probes miss
				got, ok := p.Get(adm.Int(k))
				if k < sealed {
					if !ok || got.Field("v").IntVal() != k {
						t.Errorf("sealed key %d = %v,%v", k, got, ok)
						return
					}
				}
				if it%50 == 0 { // partial scans exercise cursor pins + early close
					cur := p.Snapshot().Cursor()
					for i := 0; i < 40; i++ {
						if _, _, ok := cur.Next(); !ok {
							break
						}
					}
					cur.Close()
				}
			}
		}(int64(g) + 77)
	}
	// Readers drive the duration; stop the writer when they finish.
	readers.Wait()
	close(done)
	writers.Wait()

	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Pinned != 0 {
		t.Fatalf("leaked pins after workload: %+v", st)
	}
}
