package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ideadb/idea/internal/adm"
)

// WAL is the storage log a partition appends to before applying a
// mutation. The paper notes that "the evaluation of an insert job ...
// will have to wait for the storage log to be flushed to finish
// properly"; Commit models that wait — and, in durable mode, performs
// it for real.
//
// The log has two modes. Accounting mode (NewWAL, no filesystem) keeps
// the LSN bookkeeping and group-commit latency behaviour of the
// original simulation: nothing is written anywhere. Durable mode
// (OpenWAL) appends length-prefixed, CRC32C-framed records to a
// sequence of on-disk segment files; each frame carries a whole
// storage batch of binary-encoded key/record pairs (adm.AppendBinary),
// so the one-fsync-per-frame group-commit economics of the batch write
// path survive durability. Segments fully covered by flushed run files
// are deleted by TruncateTo.
//
// # Group commit
//
// Commit coalesces concurrent committers: the first caller becomes the
// leader, waits out the (single) group-commit window, writes and
// fsyncs everything appended by then, and releases every waiter whose
// entries that durability point covers. Followers never sleep their
// own window and never issue their own fsync — they block until a
// durability point at or past their last append, exactly one timer and
// one fsync per group.
//
// # On-disk format (version 1)
//
//	segment  := header frame*
//	header   := "IDEAWAL" version:1B
//	frame    := payloadLen:4B-LE crc32c(payload):4B-LE payload
//	payload  := firstLSN:uvarint count:uvarint entry{count}
//	entry    := key:adm-binary record:adm-binary
//
// A tombstone entry's record is MISSING. Segments are named
// wal-%06d.log; the first frame of each segment locates it in LSN
// space. Replay validates every frame's CRC and treats a short or
// corrupt frame at the tail of the last segment as a torn write: the
// tail is truncated and recovery proceeds — committed frames are never
// behind a torn one, because writes are sequential and fsync ordered.
type WAL struct {
	mu          sync.Mutex
	groupCommit time.Duration
	lsn         uint64
	committed   uint64
	commits     uint64

	// Group-commit coalescing: flushing marks a leader in the write
	// window; flushDone is closed (and replaced) at each durability
	// point to release the waiting followers.
	flushing  bool
	flushDone chan struct{}
	werr      error // sticky durable-write failure

	// Durable state; fs == nil means accounting mode.
	fs           FS
	dir          string
	segLimit     int64
	seg          File
	segBytes     int64
	segments     []walSegment
	pending      []byte // framed records awaiting the next commit
	pendingFirst uint64 // first LSN in pending (0 = empty)
	spare        []byte // recycled pending buffer

	// ioMu serializes segment file operations (leader writes, rotation,
	// truncation) without blocking appends.
	ioMu sync.Mutex
}

// walSegment locates one segment file in LSN space.
type walSegment struct {
	index    int
	firstLSN uint64 // first LSN recorded in the segment; 0 = none yet
	name     string
}

const (
	walMagic              = "IDEAWAL"
	walVersion            = 1
	walHeaderSize         = len(walMagic) + 1
	walFrameHeader        = 8 // payload length + CRC32C
	defaultWALSegBytes    = 4 << 20
	maxWALEntriesPerFrame = 1 << 24 // sanity bound on a decoded frame's count
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// NewWAL returns an accounting-mode log whose Commit call blocks for
// the configured group-commit latency (0 disables the wait).
func NewWAL(groupCommit time.Duration) *WAL {
	return &WAL{groupCommit: groupCommit, flushDone: make(chan struct{})}
}

// OpenWAL opens (or starts) the durable log in dir. The caller must
// Replay before the first append: replay scans the existing segments,
// rebuilds the LSN position, and truncates any torn tail.
func OpenWAL(fsys FS, dir string, groupCommit time.Duration, segLimit int64) (*WAL, error) {
	if segLimit <= 0 {
		segLimit = defaultWALSegBytes
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	w := NewWAL(groupCommit)
	w.fs = fsys
	w.dir = dir
	w.segLimit = segLimit
	return w, nil
}

func walSegmentName(index int) string { return fmt.Sprintf("wal-%06d.log", index) }

func parseWALSegmentName(name string) (int, bool) {
	var index int
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	if _, err := fmt.Sscanf(name, "wal-%06d.log", &index); err != nil {
		return 0, false
	}
	return index, true
}

// Replay scans the on-disk segments in order, invoking apply for every
// entry with LSN > from, and leaves the log positioned for appending.
// A torn or corrupt frame at the tail of the last segment is truncated
// away (a crash mid-write); corruption anywhere else fails recovery
// loudly. Replay must be called exactly once, before any append.
func (w *WAL) Replay(from uint64, apply func(lsn uint64, key, rec adm.Value) error) error {
	if w.fs == nil {
		return nil
	}
	names, err := w.fs.List(w.dir)
	if err != nil {
		return err
	}
	var segs []walSegment
	for _, name := range names {
		if index, ok := parseWALSegmentName(name); ok {
			segs = append(segs, walSegment{index: index, name: name})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })

	maxLSN := from
	for i := range segs {
		last := i == len(segs)-1
		lsn, first, err := w.replaySegment(&segs[i], last, from, apply)
		if err != nil {
			return err
		}
		segs[i].firstLSN = first
		if lsn > maxLSN {
			maxLSN = lsn
		}
	}
	// A headerless newest segment was dropped by replaySegment.
	for len(segs) > 0 && segs[len(segs)-1].name == "" {
		segs = segs[:len(segs)-1]
	}
	w.mu.Lock()
	w.lsn = maxLSN
	w.committed = maxLSN
	w.segments = segs
	w.mu.Unlock()
	// Position the last segment for appending.
	if len(segs) > 0 {
		f, err := w.fs.Open(joinPath(w.dir, segs[len(segs)-1].name))
		if err != nil {
			return err
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return err
		}
		w.seg = f
		w.segBytes = size
	}
	return nil
}

// replaySegment reads one segment, applying entries past from. It
// returns the highest LSN seen and the segment's first LSN. Torn
// tails are truncated when last is set.
func (w *WAL) replaySegment(seg *walSegment, last bool, from uint64, apply func(uint64, adm.Value, adm.Value) error) (maxLSN, firstLSN uint64, err error) {
	pathname := joinPath(w.dir, seg.name)
	data, err := readFileAll(w.fs, pathname)
	if err != nil {
		return 0, 0, err
	}
	truncateTo := func(off int) error {
		f, err := w.fs.Open(pathname)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.Truncate(int64(off)); err != nil {
			return err
		}
		return f.Sync()
	}
	if len(data) < walHeaderSize || string(data[:len(walMagic)]) != walMagic {
		if last {
			// A crash can leave the newest segment created but with a
			// torn (or absent) header: nothing in it was ever
			// acknowledged, so drop it.
			if err := w.fs.Remove(pathname); err != nil {
				return 0, 0, err
			}
			seg.name = "" // mark dropped; caller prunes via firstLSN==0 && empty
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("lsm: wal segment %s: bad header", seg.name)
	}
	if data[len(walMagic)] != walVersion {
		return 0, 0, fmt.Errorf("lsm: wal segment %s: unsupported version %d", seg.name, data[len(walMagic)])
	}
	off := walHeaderSize
	for off < len(data) {
		frameStart := off
		ok, first, count, entries, n := decodeWALFrame(data[off:])
		if !ok {
			if last {
				if err := truncateTo(frameStart); err != nil {
					return maxLSN, firstLSN, err
				}
				return maxLSN, firstLSN, nil
			}
			return 0, 0, fmt.Errorf("lsm: wal segment %s: corrupt frame at offset %d", seg.name, frameStart)
		}
		if firstLSN == 0 {
			firstLSN = first
		}
		entryOff := 0
		for i := 0; i < count; i++ {
			key, kn, err := adm.DecodeBinary(entries[entryOff:])
			if err != nil {
				return 0, 0, fmt.Errorf("lsm: wal segment %s frame at %d: %w", seg.name, frameStart, err)
			}
			entryOff += kn
			rec, rn, err := adm.DecodeBinary(entries[entryOff:])
			if err != nil {
				return 0, 0, fmt.Errorf("lsm: wal segment %s frame at %d: %w", seg.name, frameStart, err)
			}
			entryOff += rn
			lsn := first + uint64(i)
			if lsn > maxLSN {
				maxLSN = lsn
			}
			if lsn > from {
				if err := apply(lsn, key, rec); err != nil {
					return 0, 0, err
				}
			}
		}
		off += n
	}
	return maxLSN, firstLSN, nil
}

// decodeWALFrame decodes one frame from the front of data. ok=false
// means the frame is short or fails its CRC (a torn tail when it is
// the final frame of the final segment).
func decodeWALFrame(data []byte) (ok bool, firstLSN uint64, count int, entries []byte, size int) {
	if len(data) < walFrameHeader {
		return false, 0, 0, nil, 0
	}
	plen := int(binary.LittleEndian.Uint32(data))
	crc := binary.LittleEndian.Uint32(data[4:])
	if plen <= 0 || len(data) < walFrameHeader+plen {
		return false, 0, 0, nil, 0
	}
	payload := data[walFrameHeader : walFrameHeader+plen]
	if crc32.Checksum(payload, crcTable) != crc {
		return false, 0, 0, nil, 0
	}
	first, n := binary.Uvarint(payload)
	if n <= 0 {
		return false, 0, 0, nil, 0
	}
	cnt, cn := binary.Uvarint(payload[n:])
	if cn <= 0 || cnt > maxWALEntriesPerFrame {
		return false, 0, 0, nil, 0
	}
	return true, first, int(cnt), payload[n+cn:], walFrameHeader + plen
}

// Append records one log entry and returns its LSN (accounting only —
// durable appends go through appendEncoded under the partition lock).
func (w *WAL) Append() uint64 { return w.appendEncoded(nil, 1) }

// AppendBatch records n log entries under one lock acquisition and
// returns the LSN of the last one. Frame-granular storage writes use it
// so a whole frame's worth of entries costs one mutex round-trip while
// the per-record LSN accounting stays real.
func (w *WAL) AppendBatch(n int) uint64 {
	if n <= 0 {
		return w.LSN()
	}
	return w.appendEncoded(nil, n)
}

// appendEncoded assigns n consecutive LSNs and, in durable mode,
// frames enc (n concatenated binary key/record entry pairs) into the
// pending buffer for the next commit. Partition write paths call it
// while holding the partition lock, which is what keeps LSN order
// consistent with memtable apply order — a freeze observes an LSN
// watermark that exactly covers its memtable.
func (w *WAL) appendEncoded(enc []byte, n int) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	first := w.lsn + 1
	w.lsn += uint64(n)
	if w.fs != nil && enc != nil && n > 0 {
		if w.pendingFirst == 0 {
			w.pendingFirst = first
		}
		start := len(w.pending)
		w.pending = append(w.pending, 0, 0, 0, 0, 0, 0, 0, 0)
		w.pending = binary.AppendUvarint(w.pending, first)
		w.pending = binary.AppendUvarint(w.pending, uint64(n))
		w.pending = append(w.pending, enc...)
		payload := w.pending[start+walFrameHeader:]
		binary.LittleEndian.PutUint32(w.pending[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(w.pending[start+4:], crc32.Checksum(payload, crcTable))
	}
	return w.lsn
}

// Commit makes every appended entry durable and returns the first
// write error the log ever hit (sticky: a log that failed to write is
// permanently failed). Concurrent committers coalesce — see the type
// comment. Storage jobs call it once per frame, so larger frames
// amortize both the group-commit window and the fsync.
func (w *WAL) Commit() error {
	w.mu.Lock()
	target := w.lsn
	for {
		if w.werr != nil {
			err := w.werr
			w.mu.Unlock()
			return err
		}
		if w.committed >= target {
			w.mu.Unlock()
			return nil
		}
		if !w.flushing {
			// Become the leader: run one group-commit window, then make
			// everything appended by the end of it durable.
			w.flushing = true
			w.mu.Unlock()
			if w.groupCommit > 0 {
				time.Sleep(w.groupCommit)
			}
			w.mu.Lock()
			buf := w.pending
			first := w.pendingFirst
			upto := w.lsn
			w.pending = w.spare[:0]
			w.pendingFirst = 0
			w.mu.Unlock()

			err := w.writeAndSync(buf, first)

			w.mu.Lock()
			w.flushing = false
			w.spare = buf[:0]
			if err != nil {
				w.werr = err
			} else {
				w.committed = upto
			}
			w.commits++
			close(w.flushDone)
			w.flushDone = make(chan struct{})
			w.mu.Unlock()
			return err
		}
		// Follow: wait for the leader's durability point, then re-check.
		ch := w.flushDone
		w.mu.Unlock()
		<-ch
		w.mu.Lock()
	}
}

// writeAndSync appends buf to the current segment (rotating first when
// the segment is full) and fsyncs. Called only by the commit leader,
// serialized by ioMu against truncation.
func (w *WAL) writeAndSync(buf []byte, firstLSN uint64) error {
	if w.fs == nil || len(buf) == 0 {
		return nil
	}
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.seg == nil || w.segBytes >= w.segLimit {
		if err := w.rotate(firstLSN); err != nil {
			return err
		}
	}
	if _, err := w.seg.Write(buf); err != nil {
		return err
	}
	w.segBytes += int64(len(buf))
	// Record the segment's position in LSN space once its first frame
	// lands (a fresh segment after rotation already has it).
	if w.segments[len(w.segments)-1].firstLSN == 0 {
		w.segments[len(w.segments)-1].firstLSN = firstLSN
	}
	return w.seg.Sync()
}

// rotate closes the current segment and starts the next, stamping the
// header. The new segment will begin at firstLSN.
func (w *WAL) rotate(firstLSN uint64) error {
	index := 1
	if n := len(w.segments); n > 0 {
		index = w.segments[n-1].index + 1
	}
	name := walSegmentName(index)
	f, err := w.fs.Create(joinPath(w.dir, name))
	if err != nil {
		return err
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	if w.seg != nil {
		w.seg.Close()
	}
	w.seg = f
	w.segBytes = int64(walHeaderSize)
	w.segments = append(w.segments, walSegment{index: index, firstLSN: firstLSN, name: name})
	return nil
}

// TruncateTo deletes segments wholly covered by flushed runs: every
// entry with LSN <= upto is durable in a run file, so any segment
// whose entire LSN range is at or below upto is dead weight. The
// current segment is never deleted.
func (w *WAL) TruncateTo(upto uint64) error {
	if w.fs == nil {
		return nil
	}
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.mu.Lock()
	segs := w.segments
	w.mu.Unlock()
	removed := 0
	for removed < len(segs)-1 {
		next := segs[removed+1]
		// Segment i ends at next.firstLSN-1; an unlocated successor
		// (firstLSN 0: created, nothing written) means segment i holds
		// everything up to the current LSN — keep it.
		if next.firstLSN == 0 || next.firstLSN-1 > upto {
			break
		}
		if err := w.fs.Remove(joinPath(w.dir, segs[removed].name)); err != nil {
			return err
		}
		removed++
	}
	if removed > 0 {
		w.mu.Lock()
		w.segments = w.segments[removed:]
		w.mu.Unlock()
	}
	return nil
}

// Close flushes pending appends and closes the segment file. The
// partition commits before closing, so this is belt-and-braces.
func (w *WAL) Close() error {
	err := w.Commit()
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.seg != nil {
		if cerr := w.seg.Close(); err == nil {
			err = cerr
		}
		w.seg = nil
	}
	return err
}

// LSN returns the last appended sequence number.
func (w *WAL) LSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lsn
}

// Committed returns the highest durable LSN.
func (w *WAL) Committed() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.committed
}

// Commits returns how many durability points (group commits) have
// completed — with coalescing this counts fsyncs, not Commit calls.
func (w *WAL) Commits() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.commits
}

// Err returns the sticky durable-write failure, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.werr
}
