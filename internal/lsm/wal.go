package lsm

import (
	"sync"
	"time"
)

// WAL is the storage log a partition appends to before applying a
// mutation. The paper notes that "the evaluation of an insert job ...
// will have to wait for the storage log to be flushed to finish
// properly"; GroupCommit models that wait. The log itself is an
// in-memory ring of recent entries (this reproduction never replays it —
// durability is out of scope — but the commit-latency behaviour and LSN
// accounting are real).
type WAL struct {
	mu          sync.Mutex
	groupCommit time.Duration
	lsn         uint64
	committed   uint64
	commits     uint64
}

// NewWAL returns a log whose Commit call blocks for the configured
// group-commit latency (0 disables the wait).
func NewWAL(groupCommit time.Duration) *WAL {
	return &WAL{groupCommit: groupCommit}
}

// Append records one log entry and returns its LSN.
func (w *WAL) Append() uint64 {
	w.mu.Lock()
	w.lsn++
	lsn := w.lsn
	w.mu.Unlock()
	return lsn
}

// AppendBatch records n log entries under one lock acquisition and
// returns the LSN of the last one. Frame-granular storage writes use it
// so a whole frame's worth of entries costs one mutex round-trip while
// the per-record LSN accounting stays real.
func (w *WAL) AppendBatch(n int) uint64 {
	if n <= 0 {
		return w.LSN()
	}
	w.mu.Lock()
	w.lsn += uint64(n)
	lsn := w.lsn
	w.mu.Unlock()
	return lsn
}

// Commit makes every appended entry durable, waiting out the simulated
// group-commit latency. Storage jobs call it once per frame, so larger
// frames amortize the wait exactly like a real group commit.
func (w *WAL) Commit() {
	if w.groupCommit > 0 {
		time.Sleep(w.groupCommit)
	}
	w.mu.Lock()
	w.committed = w.lsn
	w.commits++
	w.mu.Unlock()
}

// LSN returns the last appended sequence number.
func (w *WAL) LSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lsn
}

// Committed returns the highest durable LSN.
func (w *WAL) Committed() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.committed
}

// Commits returns how many commit calls have completed.
func (w *WAL) Commits() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.commits
}
