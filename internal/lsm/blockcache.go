package lsm

import (
	"sync"
	"sync/atomic"

	"github.com/ideadb/idea/internal/index"
)

// BlockCache caches decoded run-file blocks ([]index.Item slices) so
// warm point lookups and scans touch no filesystem and decode nothing.
// One cache is shared by every partition of a cluster (the budget is a
// deployment-level knob, like a buffer pool), keyed by (run file id,
// block index) — run ids are process-unique, so a retired run's entries
// can never be confused with its successor's.
//
// The cache is sharded to keep the lock off the read hot path's
// profile; each shard runs its own LRU list under its own mutex within
// an even split of the byte budget.
//
// # Pinning
//
// acquire/insert return the entry pinned: the caller may read
// entry.items without holding any lock until it calls release. Pinned
// entries are skipped by eviction, so a cursor parked mid-block cannot
// have its items reclaimed, and a run retired by compaction
// (BlockCache.dropRun) stays readable through outstanding pins — the
// entry is unlinked from the cache immediately but its memory lives
// until the last release. The budget is enforced at admission time:
// inserts evict from the cold end until the shard fits, and a shard
// whose entries are all pinned may transiently exceed its split.
type BlockCache struct {
	shardBudget int64
	shards      [blockCacheShards]cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

const blockCacheShards = 8

// DefaultBlockCacheBytes is the budget used when a durable cluster does
// not set one explicitly.
const DefaultBlockCacheBytes = 64 << 20

// CacheStats is a point-in-time snapshot of BlockCache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Entries / Bytes gauge the cached population; Pinned counts entries
	// currently held by readers.
	Entries int
	Pinned  int
	Bytes   int64
}

type blockKey struct {
	run   uint64
	block int
}

// blockEntry is one cached decoded block. items is immutable once
// published. pins and the LRU links are owned by the shard lock.
type blockEntry struct {
	key   blockKey
	items []index.Item
	size  int64

	pins int
	// dead marks an entry unlinked while pinned (dropRun of a retired
	// run); release must not touch shard accounting for it again.
	dead       bool
	prev, next *blockEntry
}

// cacheShard is one LRU region: head is hottest, tail coldest.
type cacheShard struct {
	mu      sync.Mutex
	used    int64
	entries map[blockKey]*blockEntry
	head    *blockEntry
	tail    *blockEntry
	pinned  int
}

// NewBlockCache creates a cache with the given byte budget across all
// shards. Budgets smaller than the shard count are clamped so every
// shard can hold at least something.
func NewBlockCache(budget int64) *BlockCache {
	if budget < blockCacheShards {
		budget = blockCacheShards
	}
	c := &BlockCache{shardBudget: budget / blockCacheShards}
	for i := range c.shards {
		c.shards[i].entries = make(map[blockKey]*blockEntry)
	}
	return c
}

func (c *BlockCache) shard(k blockKey) *cacheShard {
	// Runs hold ~dozens of blocks; mixing the block index into the shard
	// choice spreads one hot run across shards.
	return &c.shards[(k.run*31+uint64(k.block))%blockCacheShards]
}

// acquire returns the cached entry pinned, or (nil, false) on a miss.
func (c *BlockCache) acquire(run uint64, block int) (*blockEntry, bool) {
	k := blockKey{run: run, block: block}
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if e.pins == 0 {
		s.pinned++
	}
	e.pins++
	s.moveToFront(e)
	s.mu.Unlock()
	c.hits.Add(1)
	return e, true
}

// insert publishes a freshly decoded block and returns its entry
// pinned. If another reader raced the same block in, the existing entry
// wins (and is returned) so concurrent readers share one copy.
func (c *BlockCache) insert(run uint64, block int, items []index.Item) *blockEntry {
	k := blockKey{run: run, block: block}
	size := itemsSize(items)
	s := c.shard(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		if e.pins == 0 {
			s.pinned++
		}
		e.pins++
		s.moveToFront(e)
		s.mu.Unlock()
		return e
	}
	e := &blockEntry{key: k, items: items, size: size, pins: 1}
	s.entries[k] = e
	s.pushFront(e)
	s.pinned++
	s.used += size
	c.evictLocked(s)
	s.mu.Unlock()
	return e
}

// release drops one pin. The caller must not touch entry.items after.
func (c *BlockCache) release(e *blockEntry) {
	s := c.shard(e.key)
	s.mu.Lock()
	e.pins--
	if e.pins == 0 && !e.dead {
		s.pinned--
	}
	s.mu.Unlock()
}

// dropRun unlinks every entry of a retired run. Unpinned entries free
// immediately; pinned ones are marked dead and their memory lives until
// the holder releases.
func (c *BlockCache) dropRun(run uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if k.run != run {
				continue
			}
			delete(s.entries, k)
			s.unlink(e)
			s.used -= e.size
			if e.pins > 0 {
				s.pinned--
				e.dead = true
			}
		}
		s.mu.Unlock()
	}
}

// evictLocked trims the shard's cold end (skipping pinned entries)
// until it fits its budget split. Caller holds s.mu.
func (c *BlockCache) evictLocked(s *cacheShard) {
	e := s.tail
	for s.used > c.shardBudget && e != nil {
		prev := e.prev
		if e.pins == 0 {
			delete(s.entries, e.key)
			s.unlink(e)
			s.used -= e.size
			c.evictions.Add(1)
		}
		e = prev
	}
}

// Stats snapshots the cache counters and gauges.
func (c *BlockCache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Pinned += s.pinned
		st.Bytes += s.used
		s.mu.Unlock()
	}
	return st
}

func (s *cacheShard) pushFront(e *blockEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *blockEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *blockEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// itemsSize approximates a decoded block's memory footprint: the item
// headers plus each value's payload.
func itemsSize(items []index.Item) int64 {
	size := int64(len(items)) * 16 // two Value headers' slice overhead
	for _, it := range items {
		size += int64(it.Key.MemSize() + it.Val.MemSize())
	}
	return size
}
