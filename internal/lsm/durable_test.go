package lsm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
)

// durableOpts keeps memtables tiny so flushes, WAL segment rotation,
// and compaction all happen inside small tests.
func durableOpts() Options {
	return Options{MemBudget: 4 << 10, MaxComponents: 8, WALSegBytes: 8 << 10}
}

// reopen closes p and opens the same directory again.
func reopen(t *testing.T, p *Partition, fsys FS, dir string, opts Options) *Partition {
	t.Helper()
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	np, err := OpenPartition(fsys, dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return np
}

// TestDurableBasicReopen: committed writes survive a clean close and
// reopen, memtable-only (no flush ever happened).
func TestDurableBasicReopen(t *testing.T) {
	fsys := NewMemFS()
	opts := Options{MemBudget: 1 << 20, MaxComponents: 8}
	p, err := OpenPartition(fsys, "part", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		p.Upsert(adm.Int(i), rec(i, "v", adm.Int(i*i)))
	}
	p.Delete(adm.Int(7))
	if s := p.Stats(); s.FlushedRuns != 0 {
		t.Fatalf("unexpected flush: %d runs", s.FlushedRuns)
	}
	p = reopen(t, p, fsys, "part", opts)
	defer p.Close()
	if got := p.Len(); got != 99 {
		t.Fatalf("Len after reopen = %d, want 99", got)
	}
	if _, ok := p.Get(adm.Int(7)); ok {
		t.Fatal("deleted key resurrected by replay")
	}
	for i := int64(0); i < 100; i++ {
		if i == 7 {
			continue
		}
		got, ok := p.Get(adm.Int(i))
		if !ok || got.Field("v").IntVal() != i*i {
			t.Fatalf("Get(%d) after reopen = %v,%v", i, got, ok)
		}
	}
}

// TestDurableFlushAndReopen: a dataset larger than the memtable budget
// flushes to run files; close/reopen serves identical data from runs +
// replayed tail, and the WAL has been truncated behind the flushes.
func TestDurableFlushAndReopen(t *testing.T) {
	fsys := NewMemFS()
	opts := durableOpts()
	p, err := OpenPartition(fsys, "part", opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	model := map[int64]int64{}
	for i := int64(0); i < n; i++ {
		k, v := i%600, i
		p.Upsert(adm.Int(k), rec(k, "v", adm.Int(v)))
		model[k] = v
		if i%5 == 4 {
			d := (i * 7) % 600
			p.Delete(adm.Int(d))
			delete(model, d)
		}
	}
	if err := p.WaitForFlush(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().FlushedRuns; got == 0 {
		t.Fatal("expected at least one flushed run")
	}
	if got := p.FlushedLSN(); got == 0 {
		t.Fatal("FlushedLSN still zero after flushes")
	}

	p = reopen(t, p, fsys, "part", opts)
	defer p.Close()
	if got, want := p.Len(), len(model); got != want {
		t.Fatalf("Len after reopen = %d, want %d", got, want)
	}
	for k, v := range model {
		got, ok := p.Get(adm.Int(k))
		if !ok || got.Field("v").IntVal() != v {
			t.Fatalf("Get(%d) = %v,%v want v=%d", k, got, ok, v)
		}
	}
	// Scans stream runs + memtable merged in key order.
	var last int64 = -1
	p.Snapshot().Scan(func(k, r adm.Value) bool {
		if k.IntVal() <= last {
			t.Fatalf("scan out of order: %d after %d", k.IntVal(), last)
		}
		last = k.IntVal()
		if want := model[k.IntVal()]; r.Field("v").IntVal() != want {
			t.Fatalf("scan value for %d = %d, want %d", k.IntVal(), r.Field("v").IntVal(), want)
		}
		return true
	})
}

// TestDurableCompaction: enough flushes trigger size-tiered compaction;
// data stays intact and input files are deleted.
func TestDurableCompaction(t *testing.T) {
	fsys := NewMemFS()
	opts := durableOpts()
	p, err := OpenPartition(fsys, "part", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	keys := make([]adm.Value, 0, 64)
	recs := make([]adm.Value, 0, 64)
	for round := int64(0); round < 24; round++ {
		keys, recs = keys[:0], recs[:0]
		for i := int64(0); i < 64; i++ {
			k := round*64 + i
			keys = append(keys, adm.Int(k))
			recs = append(recs, rec(k, "pad", adm.String("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")))
		}
		if err := p.UpsertBatch(keys, recs); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	if err := p.WaitForFlush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Merges == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no compaction after %d flushed runs", p.Stats().FlushedRuns)
		}
		time.Sleep(time.Millisecond)
	}
	s := p.Stats()
	if s.Merges == 0 || p.Runs() >= int(s.FlushedRuns) {
		t.Fatalf("Merges=%d Runs=%d FlushedRuns=%d: compaction did not shrink the level", s.Merges, p.Runs(), s.FlushedRuns)
	}
	if got := p.Len(); got != 24*64 {
		t.Fatalf("Len after compaction = %d, want %d", got, 24*64)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableSnapshotSurvivesCompaction: a snapshot taken before a
// compaction keeps reading retired run files (deleted from the
// directory, still open).
func TestDurableSnapshotSurvivesCompaction(t *testing.T) {
	fsys := NewMemFS()
	opts := durableOpts()
	p, err := OpenPartition(fsys, "part", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := int64(0); i < 1500; i++ {
		p.Upsert(adm.Int(i), rec(i, "pad", adm.String("yyyyyyyyyyyyyyyyyyyyyyyy")))
	}
	p.Flush()
	if err := p.WaitForFlush(); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	// Force more flushes and (likely) compactions after the snapshot.
	for i := int64(1500); i < 3000; i++ {
		p.Upsert(adm.Int(i), rec(i, "pad", adm.String("yyyyyyyyyyyyyyyyyyyyyyyy")))
	}
	p.Flush()
	if err := p.WaitForFlush(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Len(); got != 1500 {
		t.Fatalf("snapshot Len = %d, want 1500 (snapshot must be stable)", got)
	}
	if got := p.Len(); got != 3000 {
		t.Fatalf("partition Len = %d, want 3000", got)
	}
}

// TestWALSegmentTruncation: flushing advances the durable watermark and
// deletes fully-covered WAL segments.
func TestWALSegmentTruncation(t *testing.T) {
	fsys := NewMemFS()
	opts := durableOpts() // 8 KiB segments: plenty of rotation below
	p, err := OpenPartition(fsys, "part", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := int64(0); i < 4000; i++ {
		p.Upsert(adm.Int(i), rec(i, "pad", adm.String("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz")))
	}
	p.Flush()
	if err := p.WaitForFlush(); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.List("part")
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, name := range names {
		if _, ok := parseWALSegmentName(name); ok {
			segs++
		}
	}
	// Everything is flushed; only the active tail segment (and possibly
	// its immediate predecessor, if no append landed after the flush)
	// should remain.
	if segs > 2 {
		t.Fatalf("%d WAL segments remain after full flush, want <= 2 (%v)", segs, names)
	}
}

// TestWALCommitCoalescing: N goroutines each append one record and
// commit concurrently; coalescing must release them all in far fewer
// durability points than commit calls.
func TestWALCommitCoalescing(t *testing.T) {
	fsys := NewMemFS()
	p, err := OpenPartition(fsys, "part", Options{
		MemBudget:     1 << 20,
		MaxComponents: 8,
		GroupCommit:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const writers = 32
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			p.Upsert(adm.Int(g), rec(g))
		}(int64(g))
	}
	wg.Wait()
	w := p.WAL()
	if got, want := w.Committed(), w.LSN(); got != want {
		t.Fatalf("Committed = %d, want %d (every writer returned)", got, want)
	}
	if commits := w.Commits(); commits >= writers {
		t.Fatalf("Commits = %d for %d concurrent writers: no coalescing happened", commits, writers)
	} else {
		t.Logf("%d writers coalesced into %d group commits", writers, commits)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableErrSticky: a WAL that cannot sync reports the failure from
// the write path on, and stays failed.
func TestDurableErrSticky(t *testing.T) {
	fsys := NewMemFS()
	p, err := OpenPartition(fsys, "part", Options{MemBudget: 1 << 20, MaxComponents: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.Upsert(adm.Int(1), rec(1))
	if err := p.Err(); err != nil {
		t.Fatalf("healthy partition reports %v", err)
	}
	fsys.FailSyncs(true)
	if err := p.UpsertBatch([]adm.Value{adm.Int(2)}, []adm.Value{rec(2)}); err == nil {
		t.Fatal("commit with failing fsync must error")
	}
	if err := p.Err(); err == nil {
		t.Fatal("failure must be sticky")
	}
	fsys.FailSyncs(false)
	if err := p.Err(); err == nil {
		t.Fatal("sticky failure must not clear")
	}
	p.Close()
}

// TestOpenDatasetReopen: the dataset-level durable API round-trips
// through close/reopen across multiple partitions.
func TestOpenDatasetReopen(t *testing.T) {
	fsys := NewMemFS()
	ds, err := OpenDataset(fsys, "db/tweets", "tweets", nil, "id", 4, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := int64(0); i < n; i++ {
		if err := ds.Upsert(rec(i, "text", adm.String(fmt.Sprintf("tweet %d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err = OpenDataset(fsys, "db/tweets", "tweets", nil, "id", 4, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if got := ds.Len(); got != n {
		t.Fatalf("Len after reopen = %d, want %d", got, n)
	}
	for i := int64(0); i < n; i += 37 {
		got, ok := ds.Get(adm.Int(i))
		if !ok || got.Field("text").StringVal() != fmt.Sprintf("tweet %d", i) {
			t.Fatalf("Get(%d) = %v,%v", i, got, ok)
		}
	}
}
