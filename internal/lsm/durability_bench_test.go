package lsm

import (
	"fmt"
	"os"
	"testing"
)

// Durability benchmarks. All run on MemFS by default so the numbers
// measure the storage engine (encoding, framing, CRC, group-commit
// coalescing, run building), not a particular disk; set
// IDEA_BENCH_DATADIR to an existing directory to run BenchmarkWALAppend
// against the real filesystem.

func benchFS(b *testing.B) (FS, string) {
	if dir := os.Getenv("IDEA_BENCH_DATADIR"); dir != "" {
		sub, err := os.MkdirTemp(dir, "ideabench-*")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { os.RemoveAll(sub) })
		return NewOSFS(), sub
	}
	return NewMemFS(), "bench"
}

// BenchmarkWALAppend measures the durable write path per frame: binary
// encoding of every key/record, one CRC-framed WAL append, one group
// commit (write + fsync). records/s is the headline number against the
// in-memory BenchmarkStorageUpsert/batch path.
func BenchmarkWALAppend(b *testing.B) {
	const frameSize = 1000
	for _, frame := range []int{1, 100, frameSize} {
		b.Run(fmt.Sprintf("frame=%d", frame), func(b *testing.B) {
			fsys, dir := benchFS(b)
			p, err := OpenPartition(fsys, dir, Options{
				MemBudget:     1 << 30, // never flush: isolate the WAL
				MaxComponents: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			b.ReportAllocs()
			b.ResetTimer()
			b.StopTimer()
			written := 0
			for i := 0; i < b.N; i++ {
				keys, recs := storageFrame(int64(written%(64*frameSize)), frame)
				b.StartTimer()
				if err := p.UpsertBatch(keys, recs); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				written += frame
			}
			b.ReportMetric(float64(written)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkRecoveryReplay measures cold-start recovery: replaying a
// WAL tail of n records into a fresh memtable (manifest load and run
// opening are included but empty — the workload never flushes).
func BenchmarkRecoveryReplay(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			fsys := NewMemFS()
			opts := Options{MemBudget: 1 << 30, MaxComponents: 8}
			p, err := OpenPartition(fsys, "bench", opts)
			if err != nil {
				b.Fatal(err)
			}
			const frame = 1000
			for done := 0; done < n; done += frame {
				keys, recs := storageFrame(int64(done), min(frame, n-done))
				if err := p.UpsertBatch(keys, recs); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			img := fsys.Crash()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rp, err := OpenPartition(img.Crash(), "bench", opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if rp.Len() != n {
					b.Fatalf("recovered %d records, want %d", rp.Len(), n)
				}
				rp.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkFlushThroughput measures memtable→run-file flush bandwidth:
// freeze a loaded memtable and drain it through the flusher (sorted
// block building, CRC framing, fsync, manifest commit, WAL truncation).
func BenchmarkFlushThroughput(b *testing.B) {
	const n = 10_000
	b.ReportAllocs()
	b.ResetTimer()
	b.StopTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		fsys := NewMemFS()
		p, err := OpenPartition(fsys, "bench", Options{MemBudget: 1 << 30, MaxComponents: 8})
		if err != nil {
			b.Fatal(err)
		}
		const frame = 1000
		for done := 0; done < n; done += frame {
			keys, recs := storageFrame(int64(done), frame)
			if err := p.UpsertBatch(keys, recs); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		p.Flush()
		if err := p.WaitForFlush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		p.flushMu.Lock()
		for _, rm := range p.man.Runs {
			bytes += rm.Bytes
		}
		p.flushMu.Unlock()
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(bytes)/b.Elapsed().Seconds()/(1<<20), "MiB/s")
}
