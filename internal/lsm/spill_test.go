package lsm

import (
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
)

// spillFrame builds a frame with both lanes populated: parsed records
// and raw lines, plus offset provenance.
func spillFrame(adapter int, first, last uint64, n int) hyracks.Frame {
	f := hyracks.Frame{Adapter: adapter, FirstOff: first, LastOff: last}
	for i := 0; i < n; i++ {
		f.Records = append(f.Records, adm.Int(int64(i)))
		f.Raw = append(f.Raw, []byte(fmt.Sprintf(`{"id": %d}`, i)))
	}
	return f
}

func TestSpillQueueRoundTrip(t *testing.T) {
	fs := NewMemFS()
	q, err := NewSpillQueue(fs, "spill", "p000.spill")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	const frames = 10
	for i := 0; i < frames; i++ {
		first := uint64(i*4 + 1)
		if err := q.Spill(spillFrame(2, first, first+3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != frames {
		t.Fatalf("Len = %d, want %d", q.Len(), frames)
	}
	for i := 0; i < frames; i++ {
		f, ok, err := q.Unspill()
		if err != nil || !ok {
			t.Fatalf("Unspill %d: ok=%v err=%v", i, ok, err)
		}
		wantFirst := uint64(i*4 + 1)
		if f.Adapter != 2 || f.FirstOff != wantFirst || f.LastOff != wantFirst+3 {
			t.Fatalf("frame %d provenance = adapter=%d %d..%d", i, f.Adapter, f.FirstOff, f.LastOff)
		}
		if len(f.Records) != 4 || len(f.Raw) != 4 {
			t.Fatalf("frame %d has %d records / %d raw", i, len(f.Records), len(f.Raw))
		}
		for j, r := range f.Records {
			if v, _ := r.AsInt(); v != int64(j) {
				t.Fatalf("frame %d record %d = %v", i, j, r)
			}
			if want := fmt.Sprintf(`{"id": %d}`, j); string(f.Raw[j]) != want {
				t.Fatalf("frame %d raw %d = %q", i, j, f.Raw[j])
			}
		}
		hyracks.RecycleFrame(f)
	}
	if _, ok, _ := q.Unspill(); ok {
		t.Fatal("Unspill on drained lane returned a frame")
	}
}

func TestSpillQueueTruncatesWhenDrained(t *testing.T) {
	fs := NewMemFS()
	q, err := NewSpillQueue(fs, "spill", "p000.spill")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// Two spill/drain cycles: the file must not grow across cycles.
	for cycle := 0; cycle < 2; cycle++ {
		for i := 0; i < 5; i++ {
			if err := q.Spill(spillFrame(0, 1, 4, 4)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 5; i++ {
			f, ok, err := q.Unspill()
			if err != nil || !ok {
				t.Fatalf("cycle %d unspill %d: ok=%v err=%v", cycle, i, ok, err)
			}
			hyracks.RecycleFrame(f)
		}
		if q.writeAt != 0 || q.readOff != 0 {
			t.Fatalf("cycle %d: file not reclaimed (writeAt=%d readOff=%d)", cycle, q.writeAt, q.readOff)
		}
	}
}

func TestSpillQueueCloseRemovesFile(t *testing.T) {
	fs := NewMemFS()
	q, err := NewSpillQueue(fs, "spill", "p000.spill")
	if err != nil {
		t.Fatal(err)
	}
	q.Spill(spillFrame(0, 1, 4, 4))
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(joinPath("spill", "p000.spill")); err == nil {
		t.Fatal("spill file survived Close")
	}
	if err := q.Spill(spillFrame(0, 5, 8, 4)); err == nil {
		t.Fatal("Spill after Close succeeded")
	}
}

// TestSpillQueueCorruptHeaderLength: a frame header whose length field
// exceeds what the file holds must fail as a decode error, not allocate
// gigabytes or panic.
func TestSpillQueueCorruptHeaderLength(t *testing.T) {
	fs := NewMemFS()
	q, err := NewSpillQueue(fs, "spill", "p000.spill")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// Hand-write a frame whose header claims a ~4GB payload the file
	// does not contain.
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], 0xFFFFFFF0)
	if _, err := q.f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	q.writeAt = int64(len(hdr))
	q.count = 1
	if _, ok, err := q.Unspill(); err == nil || ok {
		t.Fatalf("Unspill on corrupt length: ok=%v err=%v, want error", ok, err)
	}
}

// TestDecodeSpillFrameCorrupt: crafted payloads with oversized uvarint
// lengths/counts must come back as decode errors, never slice panics or
// huge allocations.
func TestDecodeSpillFrameCorrupt(t *testing.T) {
	// Raw-line length of MaxUint64: int(l) goes negative, which an
	// int-domain bounds check would wave through into a slice panic.
	p := binary.AppendUvarint(nil, 0) // adapter
	p = binary.AppendUvarint(p, 1)    // firstOff
	p = binary.AppendUvarint(p, 1)    // lastOff
	p = binary.AppendUvarint(p, 0)    // nRec
	p = binary.AppendUvarint(p, 1)    // nRaw
	p = binary.AppendUvarint(p, ^uint64(0))
	if _, err := decodeSpillFrame(p); err == nil {
		t.Fatal("oversized raw length decoded without error")
	}

	// Record count far beyond the payload: must be rejected before the
	// count sizes an allocation.
	p = binary.AppendUvarint(nil, 0)
	p = binary.AppendUvarint(p, 1)
	p = binary.AppendUvarint(p, 1)
	p = binary.AppendUvarint(p, 1<<40) // nRec
	p = binary.AppendUvarint(p, 0)     // nRaw
	if _, err := decodeSpillFrame(p); err == nil {
		t.Fatal("oversized record count decoded without error")
	}
}

// BenchmarkIntakeSpill measures the spill lane round trip — encode one
// frame to the (in-memory) file and decode it back — the per-frame cost
// a congested Spill-policy feed pays instead of blocking.
func BenchmarkIntakeSpill(b *testing.B) {
	fs := NewMemFS()
	q, err := NewSpillQueue(fs, "spill", "bench.spill")
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	records := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Spill(spillFrame(0, uint64(i*128+1), uint64(i*128+128), 128)); err != nil {
			b.Fatal(err)
		}
		f, ok, err := q.Unspill()
		if err != nil || !ok {
			b.Fatalf("unspill: ok=%v err=%v", ok, err)
		}
		records += len(f.Records)
		hyracks.RecycleFrame(f)
	}
	b.ReportMetric(float64(records)/float64(b.N), "records/frame")
}
