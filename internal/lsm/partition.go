// Package lsm implements the storage engine underneath datasets: one
// log-structured merge (LSM) partition per storage node, with a mutable
// B-tree memtable, immutable sorted components, snapshot scans, flush
// and tiered merge, a write-ahead log with group commit, and
// synchronously-maintained secondary indexes.
//
// The paper's Section 7.3 behaviour — "updates to a dataset will
// activate the in-memory component of its LSM structure and thereby
// change how the system accesses data even at the low rate of one record
// per second" — falls out of this design: a quiescent partition serves
// reads from frozen components with no memtable in the path, while any
// update stream keeps a live memtable (and periodic freezes and merges)
// in every reader's way.
//
// # Frame-granular batch writes
//
// The write path is frame-granular: storage consumers hand a whole
// dataflow frame's records to Partition.UpsertBatch (or a frame to
// Dataset.UpsertFrame), which costs one WAL append+commit, one
// partition lock acquisition, one sort, one bulk memtable insert
// (index.BTree.PutBatch), grouped secondary-index maintenance, and one
// flush-threshold check for the entire frame. Ownership follows the
// hyracks frame rules: the call transfers the frame downstream, storage
// retains the records (keeping their arena alive), the spines are
// recycled on the storage side — UpsertFrame recycles them itself; a
// writer calling UpsertBatch recycles after it returns — and the arena
// is never reset. Per-record Upsert/Insert/Delete remain for point DML
// and catalog maintenance.
package lsm

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
)

// Options tunes one partition.
type Options struct {
	// MemBudget is the approximate memtable size in bytes that triggers
	// a flush to an immutable component.
	MemBudget int
	// MaxComponents is the number of immutable components that triggers
	// a full (tiered) merge.
	MaxComponents int
	// GroupCommit is the WAL group-commit window (see WAL).
	GroupCommit time.Duration
	// WALSegBytes caps one durable WAL segment file (0 = default 4 MiB).
	// Only durable partitions (OpenPartition) consult it.
	WALSegBytes int64
	// BlockCache, when non-nil, caches decoded run-file blocks across
	// every partition sharing it (the cluster wires one shared cache).
	// Nil reads every block from the filesystem. Only durable
	// partitions consult it.
	BlockCache *BlockCache
}

// DefaultOptions are sized for the in-process simulation: small enough
// to exercise flushes and merges in tests, large enough not to dominate.
func DefaultOptions() Options {
	return Options{
		MemBudget:     8 << 20,
		MaxComponents: 8,
	}
}

// component is one immutable sorted run: a frozen memtable B-tree
// (freeze is O(1) — the tree is detached, never copied), a flat item
// slice (the output of an in-memory tiered merge), or an on-disk run
// file (the output of a durable flush or compaction).
type component struct {
	items []index.Item // ascending by key; tombstones are MISSING values
	tree  *index.BTree // frozen memtable; nil for slice-backed runs
	run   *runFile     // on-disk run; nil for memory-backed components

	// upToLSN is the highest WAL sequence number whose effect the
	// component (together with everything older) contains. The flusher
	// uses it as the durable watermark: once this component is a run
	// file, WAL segments at or below upToLSN are dead. Zero in
	// non-durable partitions.
	upToLSN uint64
	// bytes is the on-disk size of a run-backed component (compaction
	// tiering input).
	bytes int64

	// shared marks components handed out to a Snapshot (set under the
	// partition lock). A tiered merge may recycle the nodes of a frozen
	// tree it retires — but only when no Snapshot ever observed it.
	shared bool
}

func (c *component) get(key adm.Value) (adm.Value, bool) {
	if c.run != nil {
		kp := getProbe(key)
		v, ok := c.run.get(kp)
		putProbe(kp)
		return v, ok
	}
	if c.tree != nil {
		return c.tree.Get(key)
	}
	lo, hi := 0, len(c.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if adm.Less(c.items[mid].Key, key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.items) && adm.Compare(c.items[lo].Key, key) == 0 {
		return c.items[lo].Val, true
	}
	return adm.Value{}, false
}

// runCursor streams one component in key order: a slice walk, an
// index.BTree cursor, or a block-streaming run-file cursor, depending
// on how the run is backed.
type runCursor struct {
	items []index.Item
	pos   int
	tc    *index.Cursor
	fc    *runFileCursor
}

func (c *component) cursor() runCursor {
	if c.run != nil {
		return runCursor{fc: c.run.cursor()}
	}
	if c.tree != nil {
		return runCursor{tc: c.tree.Cursor()}
	}
	return runCursor{items: c.items}
}

func (rc *runCursor) next() (index.Item, bool) {
	if rc.fc != nil {
		return rc.fc.next()
	}
	if rc.tc != nil {
		return rc.tc.Next()
	}
	if rc.pos >= len(rc.items) {
		return index.Item{}, false
	}
	it := rc.items[rc.pos]
	rc.pos++
	return it, true
}

// close releases run-file resources (cursor pin + file reference).
// Memory-backed cursors have nothing to release. Idempotent.
func (rc *runCursor) close() {
	if rc.fc != nil {
		rc.fc.close()
	}
}

// Stats is a point-in-time copy of partition activity counters;
// experiments read these to explain throughput shapes.
type Stats struct {
	Gets    uint64
	Scans   uint64
	Upserts uint64
	Deletes uint64
	Flushes uint64
	Merges  uint64
	// FlushedRuns counts frozen memtables persisted as on-disk run
	// files (durable partitions only).
	FlushedRuns uint64
	Components  int
	MemEntries  int
	// Read-path skip counters (durable partitions): point lookups
	// rejected by a run's key-range fence or bloom filter without any
	// block read, and framed block reads that did hit the filesystem.
	FenceSkips uint64
	BloomSkips uint64
	BlockReads uint64
	// OpenRuns gauges run files currently open (component-backed plus
	// retired-but-referenced).
	OpenRuns int
}

// liveStats holds the counters that are written while only a read lock
// is held (point lookups), so they must be atomic.
type liveStats struct {
	gets atomic.Uint64
}

// Partition is a single LSM storage partition: one primary-key-ordered
// store plus its secondary indexes. All public methods are safe for
// concurrent use.
type Partition struct {
	opts Options
	wal  *WAL

	live liveStats

	mu         sync.RWMutex
	mem        *index.BTree
	memBytes   int
	components []*component // newest first
	secondary  []SecondaryIndex
	stats      Stats
	closed     bool
	perr       error // sticky storage failure (flush/compaction/commit)
	// ckpts holds feed-resume checkpoints (scope -> source offset).
	// Checkpoints are logged through the WAL like data entries — so a
	// checkpoint's durability is ordered after the records it covers —
	// but live here instead of the memtable, and survive WAL truncation
	// via the manifest's Checkpoints snapshot.
	ckpts map[string]uint64

	// onNew is the memtable byte-accounting hook handed to
	// BTree.PutBatch; built once so batch upserts don't allocate a
	// closure per frame.
	onNew func(index.Item)

	// Durable state (OpenPartition); fs == nil means in-memory only.
	fs  FS
	dir string
	// renv is the read-path environment (shared block cache + this
	// partition's read counters) threaded into every run file opened.
	renv runEnv
	// flushMu serializes the flusher's work units (flush, compaction,
	// manifest stores) against Close. man is flusher-owned: read or
	// written only under flushMu.
	flushMu     sync.Mutex
	man         manifest
	flushC      chan struct{}
	flusherDone chan struct{}
	// retired holds run files replaced by compaction; live snapshots may
	// still read them, so they are closed only at partition Close.
	retired []*runFile
}

// durable reports whether the partition persists to a filesystem.
func (p *Partition) durable() bool { return p.fs != nil }

// NewPartition returns an empty partition.
func NewPartition(opts Options) *Partition {
	if opts.MemBudget <= 0 {
		opts.MemBudget = DefaultOptions().MemBudget
	}
	if opts.MaxComponents <= 0 {
		opts.MaxComponents = DefaultOptions().MaxComponents
	}
	p := &Partition{
		opts: opts,
		wal:  NewWAL(opts.GroupCommit),
		mem:  index.NewBTree(),
		renv: runEnv{rs: new(readStats)},
	}
	p.onNew = func(it index.Item) {
		p.memBytes += it.Key.MemSize() + it.Val.MemSize()
	}
	return p
}

// WAL exposes the partition's log so storage jobs can group-commit once
// per frame.
func (p *Partition) WAL() *WAL { return p.wal }

// ckptKeyPrefix marks a WAL entry as a feed-resume checkpoint rather
// than a data record. The leading NUL keeps it out of any legitimate
// primary-key space (ADM string keys never start with NUL).
const ckptKeyPrefix = "\x00idea-ckpt\x00"

// checkpointScope reports whether a replayed WAL key is a checkpoint
// entry, and for which scope.
func checkpointScope(key adm.Value) (string, bool) {
	if key.Kind() != adm.KindString {
		return "", false
	}
	s := key.StringVal()
	if !strings.HasPrefix(s, ckptKeyPrefix) {
		return "", false
	}
	return s[len(ckptKeyPrefix):], true
}

// PutCheckpoint durably records "source offset off for scope is fully
// stored in this partition": the entry is WAL-logged and group-
// committed like a data write, so when PutCheckpoint returns nil every
// record the caller stored before it is at least as durable as the
// checkpoint itself (same log, earlier LSNs). Offsets are monotonic per
// scope; a stale offset is logged but does not regress the table. For
// in-memory partitions the table is updated without logging (resume
// then starts from zero after restart, which is correct: nothing was
// durable).
func (p *Partition) PutCheckpoint(scope string, off uint64) error {
	key := adm.String(ckptKeyPrefix + scope)
	rec := adm.Int(int64(off))
	buf := p.encodeEntry(key, rec)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if buf != nil {
			putEncBuf(buf)
		}
		return fmt.Errorf("lsm: partition closed")
	}
	p.logLocked(buf, 1)
	if p.ckpts == nil {
		p.ckpts = make(map[string]uint64)
	}
	if off > p.ckpts[scope] {
		p.ckpts[scope] = off
	}
	p.mu.Unlock()
	if buf != nil {
		putEncBuf(buf)
	}
	return p.commitDurable()
}

// Checkpoint returns the last durable checkpoint for scope (0 = none).
func (p *Partition) Checkpoint(scope string) uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ckpts[scope]
}

// checkpointsSnapshot copies the checkpoint table (flusher: manifest
// stores must not lose checkpoints to WAL truncation).
func (p *Partition) checkpointsSnapshot() map[string]uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.ckpts) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(p.ckpts))
	for k, v := range p.ckpts {
		out[k] = v
	}
	return out
}

// restoreCheckpoint seeds the checkpoint table during recovery
// (manifest first, then WAL replay; max wins).
func (p *Partition) restoreCheckpoint(scope string, off uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ckpts == nil {
		p.ckpts = make(map[string]uint64)
	}
	if off > p.ckpts[scope] {
		p.ckpts[scope] = off
	}
}

// AttachIndex registers a secondary index. Existing records are
// back-filled so an index created after a load is immediately complete.
func (p *Partition) AttachIndex(idx SecondaryIndex) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.secondary = append(p.secondary, idx)
	p.forEachLiveLocked(func(key, rec adm.Value) {
		idx.Insert(key, rec)
	})
}

// encBufPool recycles the WAL entry-encoding scratch used by the
// durable write paths (the encoding happens outside the partition lock;
// only the LSN assignment is inside it).
var encBufPool sync.Pool

func getEncBuf() *[]byte {
	if v := encBufPool.Get(); v != nil {
		b := v.(*[]byte)
		*b = (*b)[:0]
		return b
	}
	return new([]byte)
}

func putEncBuf(b *[]byte) { encBufPool.Put(b) }

// encodeEntry appends one WAL entry (binary key then record; MISSING
// record = tombstone) for durable partitions, or returns nil scratch
// for in-memory ones.
func (p *Partition) encodeEntry(key, rec adm.Value) *[]byte {
	if !p.durable() {
		return nil
	}
	buf := getEncBuf()
	*buf = adm.AppendBinary(*buf, key)
	*buf = adm.AppendBinary(*buf, rec)
	return buf
}

// logLocked appends the encoded entries to the WAL under the partition
// lock, which is the invariant that makes recovery exact: LSNs are
// assigned in memtable apply order, so a freeze's LSN watermark covers
// precisely the entries in the frozen tree.
func (p *Partition) logLocked(buf *[]byte, n int) {
	if buf == nil {
		p.wal.appendEncoded(nil, n)
		return
	}
	p.wal.appendEncoded(*buf, n)
}

// commitDurable group-commits a durable write and records the first
// failure stickily (the in-memory state is ahead of the log at that
// point, but so is a crashed process; recovery replays only what was
// acknowledged).
func (p *Partition) commitDurable() error {
	if !p.durable() {
		return nil
	}
	err := p.wal.Commit()
	if err != nil {
		p.fail(err)
	}
	return err
}

// fail records the first storage failure; later calls keep the first.
func (p *Partition) fail(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.perr == nil {
		p.perr = err
	}
	p.mu.Unlock()
}

// Err returns the sticky storage failure, if any: a WAL write that
// could not be made durable, or a failed flush/compaction.
func (p *Partition) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.perr != nil {
		return p.perr
	}
	return p.wal.Err()
}

// Upsert inserts or replaces the record under key. In durable mode the
// call returns after the entry is group-committed; a commit failure is
// recorded stickily (see Err).
func (p *Partition) Upsert(key, rec adm.Value) {
	buf := p.encodeEntry(key, rec)
	p.mu.Lock()
	p.logLocked(buf, 1)
	p.stats.Upserts++
	p.applyLocked(key, rec)
	p.mu.Unlock()
	if buf != nil {
		putEncBuf(buf)
	}
	p.commitDurable()
}

// Insert stores the record, failing if the key already exists. This is
// the INSERT (vs UPSERT) DML semantic. The duplicate check happens
// before the WAL append — a failed insert must not leave an entry that
// replay would apply.
func (p *Partition) Insert(key, rec adm.Value) error {
	buf := p.encodeEntry(key, rec)
	p.mu.Lock()
	if _, ok := p.getLocked(key); ok {
		p.mu.Unlock()
		if buf != nil {
			putEncBuf(buf)
		}
		return fmt.Errorf("lsm: duplicate key %s", key)
	}
	p.logLocked(buf, 1)
	p.stats.Upserts++
	p.applyLocked(key, rec)
	p.mu.Unlock()
	if buf != nil {
		putEncBuf(buf)
	}
	return p.commitDurable()
}

// Delete removes the key by writing a tombstone. It reports whether a
// live record was visible before the delete.
func (p *Partition) Delete(key adm.Value) bool {
	buf := p.encodeEntry(key, adm.Missing())
	p.mu.Lock()
	_, existed := p.getLocked(key)
	p.logLocked(buf, 1)
	p.stats.Deletes++
	p.applyLocked(key, adm.Missing())
	p.mu.Unlock()
	if buf != nil {
		putEncBuf(buf)
	}
	p.commitDurable()
	return existed
}

// itemBatchPool recycles the sorted-run scratch built by UpsertBatch so
// a steady frame stream reuses one buffer per partition instead of
// allocating per frame. It holds *[]index.Item boxes; callers keep the
// box across their get/put pair so pooling itself never allocates.
var itemBatchPool sync.Pool

func getItemBatch(capacity int) *[]index.Item {
	if v := itemBatchPool.Get(); v != nil {
		b := v.(*[]index.Item)
		*b = (*b)[:0]
		if cap(*b) >= capacity {
			return b
		}
		*b = make([]index.Item, 0, capacity)
		return b
	}
	b := new([]index.Item)
	*b = make([]index.Item, 0, capacity)
	return b
}

// putItemBatch recycles a batch scratch box. The box's slice must be at
// its written high-water length: only that prefix is cleared (the
// pool's invariant is that everything beyond it is already zero), which
// keeps the per-frame clear proportional to the frame instead of the
// pooled capacity.
func putItemBatch(b *[]index.Item) {
	clear(*b) // don't pin record payloads from the pool
	*b = (*b)[:0]
	itemBatchPool.Put(b)
}

// UpsertBatch inserts or replaces a whole frame's records — keys[i]
// owns recs[i] — as one storage operation: one WAL append and commit,
// one partition lock acquisition, one sort of the batch, one bulk
// memtable insert (BTree.PutBatch), one old-value lookup pass with
// grouped per-index delete/insert batches, and one flush-threshold
// check. Duplicate keys within the batch collapse to the last
// occurrence, matching the record-at-a-time upsert order. The caller
// keeps ownership of the keys/recs slices (their headers are copied
// into the memtable), but the record payloads are retained by storage.
//
// In durable mode the batch is WAL-framed as one record (encoded in
// original order — replay applies sequentially, so last-wins dedupe is
// reproduced) and the call returns after one group commit; the error is
// that commit's result.
func (p *Partition) UpsertBatch(keys, recs []adm.Value) error {
	n := len(keys)
	if n == 0 {
		return nil
	}
	if n != len(recs) {
		panic("lsm: UpsertBatch keys/recs length mismatch")
	}
	var enc *[]byte
	if p.durable() {
		enc = getEncBuf()
		for i := range keys {
			*enc = adm.AppendBinary(*enc, keys[i])
			*enc = adm.AppendBinary(*enc, recs[i])
		}
	}
	// Sort (and dedupe last-wins) outside the partition lock so
	// concurrent readers only wait on the apply itself.
	batch := getItemBatch(n)
	items := *batch
	for i := range keys {
		items = append(items, index.Item{Key: keys[i], Val: recs[i]})
	}
	// Frames from ordered sources often arrive already sorted; a linear
	// pre-check skips the sort (and the dedupe, since strictly
	// ascending keys cannot repeat).
	sorted := true
	for i := 1; i < len(items); i++ {
		if adm.Compare(items[i-1].Key, items[i].Key) >= 0 {
			sorted = false
			break
		}
	}
	if !sorted {
		slices.SortStableFunc(items, func(a, b index.Item) int {
			return adm.Compare(a.Key, b.Key)
		})
		w := 0
		for i := range items {
			if i+1 < len(items) && adm.Compare(items[i].Key, items[i+1].Key) == 0 {
				continue // a later occurrence of the same key wins
			}
			items[w] = items[i]
			w++
		}
		items = items[:w]
	}
	p.mu.Lock()
	p.logLocked(enc, n)
	p.stats.Upserts += uint64(n)
	p.applyBatchLocked(items)
	p.mu.Unlock()
	if enc != nil {
		putEncBuf(enc)
	}
	*batch = items[:n] // restore the written length for the clear
	putItemBatch(batch)
	err := p.wal.Commit() // one group commit per frame
	if err != nil {
		p.fail(err)
	}
	return err
}

// applyBatchLocked bulk-inserts the sorted, unique-keyed run into the
// memtable, maintains secondary indexes with grouped batches, and
// checks the flush threshold once for the whole batch.
func (p *Partition) applyBatchLocked(items []index.Item) {
	if len(p.secondary) > 0 {
		p.maintainIndexesBatchLocked(items)
	}
	p.mem.PutBatch(items, p.onNew)
	if p.memBytes >= p.opts.MemBudget {
		p.freezeLocked()
	}
}

// maintainIndexesBatchLocked performs one old-value lookup pass over
// the batch, then hands each secondary index a grouped delete batch
// (old entries being replaced) and a grouped insert batch (new live
// records) — two lock acquisitions per index per frame instead of two
// per record.
func (p *Partition) maintainIndexesBatchLocked(items []index.Item) {
	oldB, oldKeys, oldRecs := getValuePairBatch(len(items))
	newB, newKeys, newRecs := getValuePairBatch(len(items))
	for _, it := range items {
		if old, ok := p.getLocked(it.Key); ok {
			oldKeys = append(oldKeys, it.Key)
			oldRecs = append(oldRecs, old)
		}
		if !it.Val.IsMissing() {
			newKeys = append(newKeys, it.Key)
			newRecs = append(newRecs, it.Val)
		}
	}
	for _, idx := range p.secondary {
		idx.DeleteBatch(oldKeys, oldRecs)
	}
	for _, idx := range p.secondary {
		idx.InsertBatch(newKeys, newRecs)
	}
	putValuePairBatch(oldB, oldKeys, oldRecs)
	putValuePairBatch(newB, newKeys, newRecs)
}

// valuePair is a pooled pair of key/record scratch slices for the
// batched secondary-index maintenance pass. The pair (and its pool box)
// round-trips through each call so pooling never allocates.
type valuePair struct {
	keys, recs []adm.Value
}

var valuePairPool sync.Pool

func getValuePairBatch(capacity int) (*valuePair, []adm.Value, []adm.Value) {
	if v := valuePairPool.Get(); v != nil {
		b := v.(*valuePair)
		if cap(b.keys) >= capacity {
			return b, b.keys[:0], b.recs[:0]
		}
		b.keys = make([]adm.Value, 0, capacity)
		b.recs = make([]adm.Value, 0, capacity)
		return b, b.keys, b.recs
	}
	b := &valuePair{
		keys: make([]adm.Value, 0, capacity),
		recs: make([]adm.Value, 0, capacity),
	}
	return b, b.keys, b.recs
}

// putValuePairBatch clears only the written prefixes (callers only
// append, so len is the high-water mark) and recycles the pair.
func putValuePairBatch(b *valuePair, keys, recs []adm.Value) {
	clear(keys)
	clear(recs)
	b.keys, b.recs = keys[:0], recs[:0]
	valuePairPool.Put(b)
}

// applyLocked writes the mutation into the memtable, maintains secondary
// indexes, and triggers flush/merge when thresholds are crossed.
func (p *Partition) applyLocked(key, rec adm.Value) {
	if len(p.secondary) > 0 {
		if old, ok := p.getLocked(key); ok {
			for _, idx := range p.secondary {
				idx.Delete(key, old)
			}
		}
		if !rec.IsMissing() {
			for _, idx := range p.secondary {
				idx.Insert(key, rec)
			}
		}
	}
	replaced := p.mem.Put(key, rec)
	if !replaced {
		p.memBytes += key.MemSize() + rec.MemSize()
	}
	if p.memBytes >= p.opts.MemBudget {
		p.freezeLocked()
	}
}

// freezeLocked turns the memtable into an immutable component. The
// tree itself is detached as the component (no item copy): writers get
// a fresh memtable and the frozen tree is never mutated again, so
// snapshots and scans can walk it concurrently via index.BTree cursors.
func (p *Partition) freezeLocked() {
	if p.mem.Len() == 0 {
		return
	}
	p.stats.Flushes++
	// The watermark is exact because every WAL append happens under the
	// partition lock we hold: the frozen tree contains precisely the
	// effects of LSNs <= upToLSN not already in older components.
	c := &component{tree: p.mem, upToLSN: p.wal.LSN()}
	p.components = append([]*component{c}, p.components...)
	p.mem = index.NewBTree()
	p.memBytes = 0
	if p.durable() {
		p.signalFlushLocked()
		return
	}
	if len(p.components) > p.opts.MaxComponents {
		p.mergeLocked()
	}
}

// mergeLocked compacts every component into one, dropping shadowed
// versions and tombstones (a full tiered merge). Frozen memtable trees
// that no Snapshot ever observed are released back to the B-tree node
// pool — the memtable's node free-list recycled across freezes.
func (p *Partition) mergeLocked() {
	p.stats.Merges++
	merged := mergeComponents(p.components, true)
	for _, c := range p.components {
		if c.tree != nil && !c.shared {
			c.tree.Release()
			c.tree = nil
		}
	}
	p.components = []*component{{items: merged}}
}

// getLocked performs a point lookup across memtable and components,
// newest first.
func (p *Partition) getLocked(key adm.Value) (adm.Value, bool) {
	if v, ok := p.mem.Get(key); ok {
		if v.IsMissing() {
			return adm.Value{}, false
		}
		return v, true
	}
	return lookupComponents(p.components, key)
}

// lookupComponents point-looks-up key across components newest first,
// mapping tombstones to not-found. Run-backed components share one
// pooled probe, so the key's bloom hash is computed at most once per
// lookup (and not at all when fences reject every run).
func lookupComponents(comps []*component, key adm.Value) (adm.Value, bool) {
	var kp *pointProbe
	for _, c := range comps {
		var v adm.Value
		var ok bool
		if c.run != nil {
			if kp == nil {
				kp = getProbe(key)
			}
			v, ok = c.run.get(kp)
		} else {
			v, ok = c.get(key)
		}
		if ok {
			if kp != nil {
				putProbe(kp)
			}
			if v.IsMissing() {
				return adm.Value{}, false
			}
			return v, true
		}
	}
	if kp != nil {
		putProbe(kp)
	}
	return adm.Value{}, false
}

// Get returns the live record stored under key.
func (p *Partition) Get(key adm.Value) (adm.Value, bool) {
	p.live.gets.Add(1)
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.getLocked(key)
}

// Snapshot freezes the current memtable (if non-empty) and returns a
// stable view over the partition's immutable components. Computing jobs
// take one snapshot per invocation, which is exactly the paper's
// consistency rule: an invocation sees updates made to a referenced
// record before the record is first accessed by the job, and later
// updates are picked up by the next invocation.
func (p *Partition) Snapshot() *Snapshot {
	p.mu.Lock()
	p.stats.Scans++
	p.freezeLocked()
	comps := make([]*component, len(p.components))
	copy(comps, p.components)
	for _, c := range comps {
		// A component a snapshot can reach must never have its tree
		// recycled by a later merge.
		c.shared = true
	}
	p.mu.Unlock()
	return &Snapshot{components: comps}
}

// Len returns the number of live records (scanning all components).
func (p *Partition) Len() int {
	n := 0
	p.Snapshot().Scan(func(adm.Value, adm.Value) bool {
		n++
		return true
	})
	return n
}

// Stats returns a copy of the activity counters.
func (p *Partition) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s := p.stats
	s.Gets = p.live.gets.Load()
	s.Components = len(p.components)
	s.MemEntries = p.mem.Len()
	s.FenceSkips = p.renv.rs.fenceSkips.Load()
	s.BloomSkips = p.renv.rs.bloomSkips.Load()
	s.BlockReads = p.renv.rs.blockReads.Load()
	for _, c := range p.components {
		if c.run != nil && !c.run.closed.Load() {
			s.OpenRuns++
		}
	}
	for _, rf := range p.retired {
		if !rf.closed.Load() {
			s.OpenRuns++
		}
	}
	return s
}

// forEachLiveLocked visits every live record (no snapshot; caller holds
// the lock). The memtable is wrapped as a transient tree-backed run —
// read-only under the write lock, so no freeze is needed.
func (p *Partition) forEachLiveLocked(fn func(key, rec adm.Value)) {
	comps := append([]*component{{tree: p.mem}}, p.components...)
	for _, it := range mergeComponents(comps, true) {
		fn(it.Key, it.Val)
	}
}

// Snapshot is an immutable view of a partition at a point in time.
type Snapshot struct {
	components []*component // newest first
}

// Get performs a point lookup in the snapshot.
func (s *Snapshot) Get(key adm.Value) (adm.Value, bool) {
	return lookupComponents(s.components, key)
}

// Scan visits every live record in primary-key order until fn returns
// false.
func (s *Snapshot) Scan(fn func(key, rec adm.Value) bool) {
	scanMerged(s.components, fn)
}

// Cursor returns a pull iterator over the snapshot's live records in
// primary-key order. Unlike Scan it hands control to the caller between
// records, so a consumer (e.g. a LIMIT-k query) can stop after k pulls
// having touched only the prefix it asked for. The cursor allocates
// O(components), never O(records).
func (s *Snapshot) Cursor() *Cursor {
	return &Cursor{m: newMergeCursor(s.components, true)}
}

// Cursor streams a snapshot's live records.
type Cursor struct {
	m mergeCursor
}

// Next returns the next live record in key order.
func (cu *Cursor) Next() (key, rec adm.Value, ok bool) {
	it, ok := cu.m.next()
	if !ok {
		return adm.Value{}, adm.Value{}, false
	}
	return it.Key, it.Val, true
}

// Close releases the cursor's run-file resources (block-cache pins and
// file references). A fully drained cursor has already released them;
// Close matters for consumers that stop early (LIMIT-k) and is
// idempotent.
func (cu *Cursor) Close() { cu.m.Close() }

// Len counts live records in the snapshot.
func (s *Snapshot) Len() int {
	n := 0
	s.Scan(func(adm.Value, adm.Value) bool { n++; return true })
	return n
}

// Components reports how many immutable components back the snapshot
// (observable cost of update activity).
func (s *Snapshot) Components() int { return len(s.components) }

// mergeComponents k-way merges the sorted runs (newest first wins per
// key). When dropTombstones is set, deleted keys vanish from the output.
func mergeComponents(comps []*component, dropTombstones bool) []index.Item {
	var out []index.Item
	scanMergedItems(comps, dropTombstones, func(it index.Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

func scanMerged(comps []*component, fn func(key, rec adm.Value) bool) {
	scanMergedItems(comps, true, func(it index.Item) bool {
		return fn(it.Key, it.Val)
	})
}

func scanMergedItems(comps []*component, dropTombstones bool, fn func(index.Item) bool) {
	m := newMergeCursor(comps, dropTombstones)
	defer m.Close() // fn may stop the scan early
	for {
		it, ok := m.next()
		if !ok {
			return
		}
		if !fn(it) {
			return
		}
	}
}

// mergeCursor is an incremental k-way merge over component runs: the
// newest (lowest-index) version of each key wins, older versions are
// skipped, tombstones are optionally dropped. It is the single merged-
// read implementation under Snapshot.Scan, Snapshot.Cursor, and the
// tiered merge.
type mergeCursor struct {
	runs           []runCursor
	heads          []index.Item
	live           []bool
	dropTombstones bool
}

func newMergeCursor(comps []*component, dropTombstones bool) mergeCursor {
	m := mergeCursor{
		runs:           make([]runCursor, len(comps)),
		heads:          make([]index.Item, len(comps)),
		live:           make([]bool, len(comps)),
		dropTombstones: dropTombstones,
	}
	for i, c := range comps {
		m.runs[i] = c.cursor()
		m.heads[i], m.live[i] = m.runs[i].next()
	}
	return m
}

func (m *mergeCursor) next() (index.Item, bool) {
	for {
		// Lowest key wins; among equal keys the first (newest) run wins
		// because the scan takes the earliest index.
		best := -1
		for i := range m.runs {
			if !m.live[i] {
				continue
			}
			if best == -1 || adm.Less(m.heads[i].Key, m.heads[best].Key) {
				best = i
			}
		}
		if best == -1 {
			return index.Item{}, false
		}
		winner := m.heads[best]
		// Advance every run holding this key (shadowed versions are
		// consumed and dropped).
		for i := range m.runs {
			if m.live[i] && adm.Compare(m.heads[i].Key, winner.Key) == 0 {
				m.heads[i], m.live[i] = m.runs[i].next()
			}
		}
		if winner.Val.IsMissing() && m.dropTombstones {
			continue
		}
		return winner, true
	}
}

// Close releases every input cursor's run-file resources. Exhausted
// inputs have already released theirs; Close covers early-stopping
// consumers. Idempotent.
func (m *mergeCursor) Close() {
	for i := range m.runs {
		m.runs[i].close()
	}
}
