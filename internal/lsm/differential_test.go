package lsm

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

// TestDurableDifferential: a randomized upsert/delete stream applied in
// lockstep to three implementations — a durable partition that is
// periodically closed and reopened (forcing recovery mid-stream), a
// plain in-memory partition, and a shadow map — must agree on every
// point lookup, the live count, and full ordered scans at every
// checkpoint. Small budgets keep flushes, compactions, and WAL
// rotation continuously in play.
func TestDurableDifferential(t *testing.T) {
	const (
		seeds    = 8
		ops      = 300
		keySpace = 200
	)
	opts := Options{MemBudget: 2 << 10, MaxComponents: 3, WALSegBytes: 4 << 10}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			fsys := NewMemFS()
			dir := "part"
			durable, err := OpenPartition(fsys, dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			mem := NewPartition(opts)
			shadow := make(map[int64]int64)

			r := rand.New(rand.NewSource(seed))
			reopenEvery := 30 + r.Intn(30)
			version := int64(0)
			for op := 1; op <= ops; op++ {
				k := r.Int63n(keySpace)
				switch r.Intn(10) {
				case 0, 1: // delete
					durable.Delete(adm.Int(k))
					mem.Delete(adm.Int(k))
					delete(shadow, k)
				case 2: // batch upsert (a small frame)
					n := 1 + r.Intn(8)
					keys := make([]adm.Value, n)
					recs := make([]adm.Value, n)
					for i := 0; i < n; i++ {
						bk := r.Int63n(keySpace)
						version++
						keys[i] = adm.Int(bk)
						recs[i] = rec(bk, "ver", adm.Int(version))
						shadow[bk] = version
					}
					if err := durable.UpsertBatch(keys, recs); err != nil {
						t.Fatal(err)
					}
					if err := mem.UpsertBatch(keys, recs); err != nil {
						t.Fatal(err)
					}
				default: // single upsert
					version++
					durable.Upsert(adm.Int(k), rec(k, "ver", adm.Int(version)))
					mem.Upsert(adm.Int(k), rec(k, "ver", adm.Int(version)))
					shadow[k] = version
				}

				if op%reopenEvery == 0 {
					if err := durable.Close(); err != nil {
						t.Fatalf("op %d: close: %v", op, err)
					}
					durable, err = OpenPartition(fsys, dir, opts)
					if err != nil {
						t.Fatalf("op %d: reopen: %v", op, err)
					}
				}
				if op%25 == 0 || op == ops {
					diffCheck(t, op, durable, mem, shadow)
				}
			}
			if err := durable.Err(); err != nil {
				t.Fatal(err)
			}
			if err := durable.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// diffCheck compares the three implementations exhaustively.
func diffCheck(t *testing.T, op int, durable, mem *Partition, shadow map[int64]int64) {
	t.Helper()
	if got, want := durable.Len(), len(shadow); got != want {
		t.Fatalf("op %d: durable Len = %d, shadow %d", op, got, want)
	}
	if got, want := mem.Len(), len(shadow); got != want {
		t.Fatalf("op %d: memory Len = %d, shadow %d", op, got, want)
	}
	for k, v := range shadow {
		dg, dok := durable.Get(adm.Int(k))
		mg, mok := mem.Get(adm.Int(k))
		if !dok || dg.Field("ver").IntVal() != v {
			t.Fatalf("op %d: durable Get(%d) = %v,%v want ver=%d", op, k, dg, dok, v)
		}
		if !mok || mg.Field("ver").IntVal() != v {
			t.Fatalf("op %d: memory Get(%d) = %v,%v want ver=%d", op, k, mg, mok, v)
		}
	}
	// Ordered scans must agree element for element.
	dc := durable.Snapshot().Cursor()
	mc := mem.Snapshot().Cursor()
	for i := 0; ; i++ {
		dk, dv, dok := dc.Next()
		mk, mv, mok := mc.Next()
		if dok != mok {
			t.Fatalf("op %d: scan lengths diverge at %d (durable=%v memory=%v)", op, i, dok, mok)
		}
		if !dok {
			break
		}
		if adm.Compare(dk, mk) != 0 || adm.Compare(dv, mv) != 0 {
			t.Fatalf("op %d: scan item %d diverges: %s=%s vs %s=%s", op, i, dk, dv, mk, mv)
		}
	}
}
