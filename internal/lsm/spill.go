package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
)

// SpillQueue is the disk-backed overflow lane behind a Spill-policy
// intake holder (hyracks.FrameSpiller): a FIFO of frames encoded into a
// single append-only file through the same FS seam and CRC framing as
// the WAL. Spill takes ownership of the frame, encodes it (records in
// adm binary, raw lines length-prefixed, offset provenance in the
// header), and recycles it; Unspill decodes the oldest un-read frame
// into fresh pooled spines/arena the caller owns.
//
// Durability is deliberately NOT provided: spilled frames are by
// definition not yet checkpointed, so after a crash they are replayed
// from the source adapter, not from the spill file. The queue therefore
// never fsyncs — writes land in the page cache (or MemFS unsynced
// bytes) and the file is truncated back to zero whenever the lane
// drains, reclaiming space without rotation bookkeeping.
//
// Frame format (little-endian, CRC32-C over the payload, mirroring the
// WAL's frame = len:4 crc:4 payload):
//
//	payload := adapter:uvarint firstOff:uvarint lastOff:uvarint
//	           nRecords:uvarint nRaw:uvarint
//	           record*   (adm binary)
//	           rawLine*  (len:uvarint bytes)
//
// The holder serializes Spill against Unspill (see
// hyracks.FrameSpiller); the internal mutex exists so Len and Close are
// safe from any goroutine.
type SpillQueue struct {
	mu      sync.Mutex
	fsys    FS
	path    string
	f       File
	readOff int64 // next frame to Unspill starts here
	writeAt int64 // current end of file
	count   int   // frames written but not yet unspilled
	closed  bool

	encBuf []byte // reused encoding buffer
}

// NewSpillQueue creates (truncating) the spill file at dir/name inside
// fsys. The directory is created if needed.
func NewSpillQueue(fsys FS, dir, name string) (*SpillQueue, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("lsm: spill dir: %w", err)
	}
	p := joinPath(dir, name)
	f, err := fsys.Create(p)
	if err != nil {
		return nil, fmt.Errorf("lsm: spill file: %w", err)
	}
	return &SpillQueue{fsys: fsys, path: p, f: f}, nil
}

// Len reports frames spilled but not yet unspilled.
func (q *SpillQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Spill appends the frame to the lane, taking ownership: the frame is
// fully encoded before return and recycled (records are copied into the
// file, so the arena is safe to reset).
func (q *SpillQueue) Spill(f hyracks.Frame) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("lsm: spill queue closed")
	}

	// Build the payload after an 8-byte len+crc placeholder.
	buf := append(q.encBuf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, uint64(f.Adapter))
	buf = binary.AppendUvarint(buf, f.FirstOff)
	buf = binary.AppendUvarint(buf, f.LastOff)
	buf = binary.AppendUvarint(buf, uint64(len(f.Records)))
	buf = binary.AppendUvarint(buf, uint64(len(f.Raw)))
	for _, r := range f.Records {
		buf = adm.AppendBinary(buf, r)
	}
	for _, line := range f.Raw {
		buf = binary.AppendUvarint(buf, uint64(len(line)))
		buf = append(buf, line...)
	}
	payload := buf[8:]
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	q.encBuf = buf

	if _, err := q.f.Write(buf); err != nil {
		return fmt.Errorf("lsm: spill write: %w", err)
	}
	q.writeAt += int64(len(buf))
	q.count++
	hyracks.RecycleFrame(f)
	return nil
}

// Unspill decodes and returns the oldest spilled frame (ok=false when
// the lane is empty). The returned frame uses pooled spines and a
// pooled arena for raw lines; the caller owns it like any pulled frame.
// Draining the lane truncates the file back to zero.
func (q *SpillQueue) Unspill() (hyracks.Frame, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 || q.closed {
		return hyracks.Frame{}, false, nil
	}

	var hdr [8]byte
	if _, err := q.f.ReadAt(hdr[:], q.readOff); err != nil {
		return hyracks.Frame{}, false, fmt.Errorf("lsm: spill read header: %w", err)
	}
	plen := int(binary.LittleEndian.Uint32(hdr[:]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	// Validate the header length against what the file actually holds
	// before allocating: a corrupt length field (up to 4GB) must fail as
	// a decode error, not an enormous allocation.
	if int64(plen) > q.writeAt-(q.readOff+8) {
		return hyracks.Frame{}, false, fmt.Errorf("lsm: spill frame at %d: length %d exceeds file", q.readOff, plen)
	}
	payload := make([]byte, plen)
	if _, err := q.f.ReadAt(payload, q.readOff+8); err != nil {
		return hyracks.Frame{}, false, fmt.Errorf("lsm: spill read payload: %w", err)
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return hyracks.Frame{}, false, fmt.Errorf("lsm: spill frame at %d: crc mismatch", q.readOff)
	}

	f, err := decodeSpillFrame(payload)
	if err != nil {
		return hyracks.Frame{}, false, err
	}
	q.readOff += int64(8 + plen)
	q.count--
	if q.count == 0 {
		// Lane drained: reclaim the file. Failure to truncate is not
		// fatal — the next spill simply appends past the dead bytes.
		if err := q.f.Truncate(0); err == nil {
			q.readOff, q.writeAt = 0, 0
		} else {
			q.readOff = q.writeAt
		}
	}
	return f, true, nil
}

func decodeSpillFrame(payload []byte) (hyracks.Frame, error) {
	var f hyracks.Frame
	fields := [3]uint64{}
	pos := 0
	for i := range fields {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return f, fmt.Errorf("lsm: spill frame: truncated header")
		}
		fields[i], pos = v, pos+n
	}
	f.Adapter, f.FirstOff, f.LastOff = int(fields[0]), fields[1], fields[2]
	nRec, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return f, fmt.Errorf("lsm: spill frame: truncated record count")
	}
	pos += n
	nRaw, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return f, fmt.Errorf("lsm: spill frame: truncated raw count")
	}
	pos += n
	// Every record and raw line costs at least one payload byte, so a
	// count beyond the remaining bytes is corrupt — reject it before
	// sizing slices from it. (Check each count first so the sum cannot
	// wrap.)
	rem := uint64(len(payload) - pos)
	if nRec > rem || nRaw > rem || nRec+nRaw > rem {
		return f, fmt.Errorf("lsm: spill frame: counts %d+%d exceed payload", nRec, nRaw)
	}

	if nRec > 0 {
		f.Records = hyracks.GetRecordSlice(int(nRec))
		for i := uint64(0); i < nRec; i++ {
			v, n, err := adm.DecodeBinary(payload[pos:])
			if err != nil {
				return f, fmt.Errorf("lsm: spill frame record %d: %w", i, err)
			}
			f.Records = append(f.Records, v)
			pos += n
		}
	}
	if nRaw > 0 {
		f.Raw = hyracks.GetRawSlice(int(nRaw))
		f.Arena = hyracks.GetArena()
		for i := uint64(0); i < nRaw; i++ {
			l, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return f, fmt.Errorf("lsm: spill frame raw %d: truncated length", i)
			}
			pos += n
			// Compare in uint64 before converting: int(l) for a length
			// above MaxInt64 goes negative and would slip past an
			// int-domain bounds check into a slice panic.
			if l > uint64(len(payload)-pos) {
				return f, fmt.Errorf("lsm: spill frame raw %d: truncated bytes", i)
			}
			f.Raw = append(f.Raw, f.Arena.AppendBytes(payload[pos:pos+int(l)]))
			pos += int(l)
		}
	}
	return f, nil
}

// Close releases the file handle and removes the spill file. Frames
// still parked in the lane are discarded — teardown only happens after
// the feed has stopped, when un-drained spilled frames are replayed
// from the source on resume.
func (q *SpillQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	err := q.f.Close()
	if rerr := q.fsys.Remove(q.path); err == nil {
		err = rerr
	}
	return err
}
