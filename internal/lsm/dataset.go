package lsm

import (
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/hyracks"
)

// Dataset is a hash-partitioned collection of records of one datatype,
// the storage-side object behind CREATE DATASET. Records route to a
// partition by the hash of their primary key; each partition keeps its
// own LSM structure and local secondary indexes — the AsterixDB layout.
type Dataset struct {
	name       string
	datatype   *adm.Datatype
	primaryKey string
	partitions []*Partition

	mu      sync.RWMutex
	indexes map[string]indexSpec // index name → builder (one instance per partition)
}

type indexSpec struct {
	field        string // indexed field name ("" for custom extractors)
	perPartition []SecondaryIndex
}

// NewDataset creates a dataset with the given number of storage
// partitions (one per storage node in the simulated cluster).
func NewDataset(name string, dt *adm.Datatype, primaryKey string, numPartitions int, opts Options) (*Dataset, error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("lsm: dataset %s: need at least one partition", name)
	}
	if primaryKey == "" {
		return nil, fmt.Errorf("lsm: dataset %s: primary key required", name)
	}
	ds := &Dataset{
		name:       name,
		datatype:   dt,
		primaryKey: primaryKey,
		partitions: make([]*Partition, numPartitions),
		indexes:    make(map[string]indexSpec),
	}
	for i := range ds.partitions {
		ds.partitions[i] = NewPartition(opts)
	}
	return ds, nil
}

// OpenDataset opens (or creates) a durable dataset rooted at dir: one
// durable partition per storage node, each in its own subdirectory
// (p000, p001, ...) with its own WAL, run files, and manifest. Reopening
// an existing directory recovers every partition (run files + WAL
// replay) before returning. The partition count must match the one the
// dataset was created with; it is not stored, the caller's catalog owns
// that.
func OpenDataset(fsys FS, dir, name string, dt *adm.Datatype, primaryKey string, numPartitions int, opts Options) (*Dataset, error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("lsm: dataset %s: need at least one partition", name)
	}
	if primaryKey == "" {
		return nil, fmt.Errorf("lsm: dataset %s: primary key required", name)
	}
	ds := &Dataset{
		name:       name,
		datatype:   dt,
		primaryKey: primaryKey,
		partitions: make([]*Partition, numPartitions),
		indexes:    make(map[string]indexSpec),
	}
	for i := range ds.partitions {
		p, err := OpenPartition(fsys, joinPath(dir, fmt.Sprintf("p%03d", i)), opts)
		if err != nil {
			for _, opened := range ds.partitions[:i] {
				opened.Close()
			}
			return nil, fmt.Errorf("lsm: dataset %s: %w", name, err)
		}
		ds.partitions[i] = p
	}
	return ds, nil
}

// Close shuts down every partition (flusher drained, WAL committed and
// closed, run files closed). In-memory datasets close trivially.
func (d *Dataset) Close() error {
	var firstErr error
	for _, p := range d.partitions {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// Datatype returns the declared record type (may be nil for untyped
// internal datasets).
func (d *Dataset) Datatype() *adm.Datatype { return d.datatype }

// PrimaryKey returns the primary-key field name.
func (d *Dataset) PrimaryKey() string { return d.primaryKey }

// NumPartitions returns the partition count.
func (d *Dataset) NumPartitions() int { return len(d.partitions) }

// Partition returns storage partition i.
func (d *Dataset) Partition(i int) *Partition { return d.partitions[i] }

// Route returns the partition index that owns the primary key.
func (d *Dataset) Route(pk adm.Value) int {
	return int(adm.Hash(pk) % uint64(len(d.partitions)))
}

// PutCheckpoint records a feed-resume checkpoint on every partition
// (see Partition.PutCheckpoint), so losing any subset of partitions
// still leaves the full watermark recoverable from the survivors.
func (d *Dataset) PutCheckpoint(scope string, off uint64) error {
	for _, p := range d.partitions {
		if err := p.PutCheckpoint(scope, off); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint returns the highest durable checkpoint for scope across
// the partitions (0 = none). Max is correct because a checkpoint is
// written only after the records it covers are durable on every
// partition; a partition holding an older value just means more
// redelivery, which last-wins upsert absorbs.
func (d *Dataset) Checkpoint(scope string) uint64 {
	var best uint64
	for _, p := range d.partitions {
		if off := p.Checkpoint(scope); off > best {
			best = off
		}
	}
	return best
}

// KeyOf extracts the primary key from a record.
func (d *Dataset) KeyOf(rec adm.Value) (adm.Value, error) {
	pk := rec.Field(d.primaryKey)
	if pk.IsUnknown() {
		return adm.Value{}, fmt.Errorf("lsm: dataset %s: record missing primary key %q", d.name, d.primaryKey)
	}
	return pk, nil
}

// Upsert validates (when typed), routes, and stores the record.
func (d *Dataset) Upsert(rec adm.Value) error {
	rec, err := d.prepare(rec)
	if err != nil {
		return err
	}
	pk, err := d.KeyOf(rec)
	if err != nil {
		return err
	}
	d.partitions[d.Route(pk)].Upsert(pk, rec)
	return nil
}

// UpsertBatch validates, routes, and stores a whole batch of records,
// handing each touched partition one frame-granular UpsertBatch (one
// WAL append+commit, one lock, one bulk memtable insert) instead of a
// per-record Upsert. Validation runs for the entire batch before
// anything is written, so a bad record fails the batch without leaving
// a prefix behind. The caller keeps ownership of recs; the record
// payloads are retained by storage.
func (d *Dataset) UpsertBatch(recs []adm.Value) error {
	if len(recs) == 0 {
		return nil
	}
	// Fast path: one partition means no routing and no regrouping.
	if len(d.partitions) == 1 {
		keys := hyracks.GetRecordSlice(len(recs))
		defer hyracks.PutRecordSlice(keys)
		prepared := hyracks.GetRecordSlice(len(recs))
		defer hyracks.PutRecordSlice(prepared)
		for _, rec := range recs {
			rec, err := d.prepare(rec)
			if err != nil {
				return err
			}
			pk, err := d.KeyOf(rec)
			if err != nil {
				return err
			}
			keys = append(keys, pk)
			prepared = append(prepared, rec)
		}
		return d.partitions[0].UpsertBatch(keys, prepared)
	}
	perKeys := make([][]adm.Value, len(d.partitions))
	perRecs := make([][]adm.Value, len(d.partitions))
	// Return every drawn scratch to the pool on all paths — including a
	// mid-batch validation error, which would otherwise leak the slices
	// drawn for partitions grouped so far.
	defer func() {
		for t := range perKeys {
			if perKeys[t] != nil {
				hyracks.PutRecordSlice(perKeys[t])
				hyracks.PutRecordSlice(perRecs[t])
			}
		}
	}()
	for _, rec := range recs {
		rec, err := d.prepare(rec)
		if err != nil {
			return err
		}
		pk, err := d.KeyOf(rec)
		if err != nil {
			return err
		}
		t := d.Route(pk)
		if perKeys[t] == nil {
			perKeys[t] = hyracks.GetRecordSlice(len(recs))
			perRecs[t] = hyracks.GetRecordSlice(len(recs))
		}
		perKeys[t] = append(perKeys[t], pk)
		perRecs[t] = append(perRecs[t], rec)
	}
	var firstErr error
	for t, keys := range perKeys {
		if keys == nil {
			continue
		}
		// Keep writing the remaining partitions even after one fails:
		// the batch has no cross-partition atomicity either way, and
		// stopping early would lose committed-elsewhere records' chance
		// to commit.
		if err := d.partitions[t].UpsertBatch(keys, perRecs[t]); err != nil && firstErr == nil {
			firstErr = err
		}
		hyracks.PutRecordSlice(keys)
		hyracks.PutRecordSlice(perRecs[t])
		perKeys[t], perRecs[t] = nil, nil
	}
	return firstErr
}

// UpsertFrame stores a whole dataflow frame. On success the frame is
// consumed: storage retains its records, so UpsertFrame recycles the
// spines itself (never the arena — retained values keep it alive) and
// the caller must not touch the frame afterwards. On error the caller
// still owns the frame. Raw-lane frames are rejected: records must be
// parsed before they reach storage.
func (d *Dataset) UpsertFrame(fr hyracks.Frame) error {
	if len(fr.Raw) > 0 {
		return fmt.Errorf("lsm: dataset %s: raw-lane frame reached storage; parse records first", d.name)
	}
	if err := d.UpsertBatch(fr.Records); err != nil {
		return err
	}
	hyracks.RecycleFrameSpines(fr)
	return nil
}

// Insert is Upsert with duplicate-key rejection.
func (d *Dataset) Insert(rec adm.Value) error {
	rec, err := d.prepare(rec)
	if err != nil {
		return err
	}
	pk, err := d.KeyOf(rec)
	if err != nil {
		return err
	}
	return d.partitions[d.Route(pk)].Insert(pk, rec)
}

// Delete removes the record with the given primary key.
func (d *Dataset) Delete(pk adm.Value) bool {
	return d.partitions[d.Route(pk)].Delete(pk)
}

// Get returns the live record with the given primary key.
func (d *Dataset) Get(pk adm.Value) (adm.Value, bool) {
	return d.partitions[d.Route(pk)].Get(pk)
}

func (d *Dataset) prepare(rec adm.Value) (adm.Value, error) {
	if d.datatype == nil {
		return rec, nil
	}
	return d.datatype.Validate(rec)
}

// SnapshotAll captures one snapshot per partition (a consistent enough
// view for a computing-job invocation: record-level consistency, as the
// paper specifies).
func (d *Dataset) SnapshotAll() []*Snapshot {
	snaps := make([]*Snapshot, len(d.partitions))
	for i, p := range d.partitions {
		snaps[i] = p.Snapshot()
	}
	return snaps
}

// ScanAll visits every live record across partitions (partition by
// partition, each in key order) until fn returns false.
func (d *Dataset) ScanAll(fn func(key, rec adm.Value) bool) {
	sc := d.Scan()
	for {
		k, r, ok := sc.Next()
		if !ok {
			return
		}
		if !fn(k, r) {
			return
		}
	}
}

// Scan returns a pull cursor over the dataset's live records (partition
// by partition, each partition in primary-key order). The cursor reads
// from a snapshot taken at call time and never copies the dataset into
// a slice: each pull walks the underlying memtable trees and sorted
// runs directly, so a consumer that stops after k records pays O(k),
// not O(dataset). This is the scan operator under the streaming query
// path.
func (d *Dataset) Scan() *ScanCursor {
	return NewScanCursor(d.SnapshotAll())
}

// NewScanCursor streams previously captured partition snapshots — the
// query engine builds cursors over its pinned snapshots so repeated
// scans inside one evaluation observe the same data (record-level
// consistency).
func NewScanCursor(snaps []*Snapshot) *ScanCursor {
	return &ScanCursor{snaps: snaps}
}

// ScanCursor streams a dataset's live records across partitions.
type ScanCursor struct {
	snaps []*Snapshot
	cur   *Cursor
	i     int
}

// Next returns the next live record.
func (sc *ScanCursor) Next() (key, rec adm.Value, ok bool) {
	for {
		if sc.cur == nil {
			if sc.i >= len(sc.snaps) {
				return adm.Value{}, adm.Value{}, false
			}
			sc.cur = sc.snaps[sc.i].Cursor()
			sc.i++
		}
		if k, r, ok := sc.cur.Next(); ok {
			return k, r, true
		}
		sc.cur = nil
	}
}

// Close releases the cursor's run-file resources (block-cache pins and
// file references held by the partition currently being streamed). A
// fully drained cursor has already released everything; Close matters
// for consumers that stop early (LIMIT-k) — the query layer calls it
// through the rowSrc close chain. Idempotent; Next after Close reports
// exhaustion.
func (sc *ScanCursor) Close() {
	if sc.cur != nil {
		sc.cur.Close()
		sc.cur = nil
	}
	sc.i = len(sc.snaps)
}

// Len counts live records across all partitions.
func (d *Dataset) Len() int {
	n := 0
	for _, p := range d.partitions {
		n += p.Len()
	}
	return n
}

// CreateSpatialIndex attaches a spatial secondary index over a named
// point/rectangle/circle field (one local tree per partition), recording
// the field so the enrichment planner can match predicates to it.
func (d *Dataset) CreateSpatialIndex(name, field string) error {
	return d.createRTreeIndex(name, field, FieldRectExtractor(field))
}

// CreateRTreeIndex attaches a spatial secondary index with a custom
// extractor (one local tree per partition), back-filling existing
// records.
func (d *Dataset) CreateRTreeIndex(name string, extract RectExtractor) error {
	return d.createRTreeIndex(name, "", extract)
}

func (d *Dataset) createRTreeIndex(name, field string, extract RectExtractor) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.indexes[name]; dup {
		return fmt.Errorf("lsm: dataset %s: duplicate index %q", d.name, name)
	}
	spec := indexSpec{field: field, perPartition: make([]SecondaryIndex, len(d.partitions))}
	for i, p := range d.partitions {
		ix := NewRTreeIndex(name, extract)
		spec.perPartition[i] = ix
		p.AttachIndex(ix)
	}
	d.indexes[name] = spec
	return nil
}

// RTreeIndexForField returns the per-partition spatial indexes declared
// over the named field, or nil when none exists. The enrichment planner
// uses this to choose index-NLJ over a per-batch R-tree build.
func (d *Dataset) RTreeIndexForField(field string) []*RTreeIndex {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for name, spec := range d.indexes {
		if spec.field == field {
			if out := d.rtreeLocked(name); out != nil {
				return out
			}
		}
	}
	return nil
}

// CreateBTreeIndex attaches an ordered secondary index with a custom
// extractor (one per partition), back-filling existing records.
func (d *Dataset) CreateBTreeIndex(name string, extract KeyExtractor) error {
	return d.createBTreeIndex(name, "", extract)
}

// CreateFieldBTreeIndex attaches an ordered secondary index over a
// named top-level field, recording the field so the query planner can
// route WHERE predicates on it to an index range scan.
func (d *Dataset) CreateFieldBTreeIndex(name, field string) error {
	return d.createBTreeIndex(name, field, FieldKeyExtractor(field))
}

func (d *Dataset) createBTreeIndex(name, field string, extract KeyExtractor) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.indexes[name]; dup {
		return fmt.Errorf("lsm: dataset %s: duplicate index %q", d.name, name)
	}
	spec := indexSpec{field: field, perPartition: make([]SecondaryIndex, len(d.partitions))}
	for i, p := range d.partitions {
		ix := NewBTreeIndex(name, extract)
		spec.perPartition[i] = ix
		p.AttachIndex(ix)
	}
	d.indexes[name] = spec
	return nil
}

// BTreeIndexForField returns the name and per-partition instances of an
// ordered index declared over the named field, or ("", nil) when none
// exists — the query planner's pushdown probe.
func (d *Dataset) BTreeIndexForField(field string) (string, []*BTreeIndex) {
	if field == "" {
		return "", nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	for name, spec := range d.indexes {
		if spec.field != field {
			continue
		}
		out := make([]*BTreeIndex, 0, len(spec.perPartition))
		for _, ix := range spec.perPartition {
			bt, isBT := ix.(*BTreeIndex)
			if !isBT {
				out = nil
				break
			}
			out = append(out, bt)
		}
		if out != nil {
			return name, out
		}
	}
	return "", nil
}

// RTreeIndexes returns the per-partition instances of the named spatial
// index, or nil when it does not exist (or is not spatial).
func (d *Dataset) RTreeIndexes(name string) []*RTreeIndex {
	d.mu.RLock()
	defer d.mu.RUnlock()
	spec, ok := d.indexes[name]
	if !ok {
		return nil
	}
	out := make([]*RTreeIndex, 0, len(spec.perPartition))
	for _, ix := range spec.perPartition {
		rt, isRT := ix.(*RTreeIndex)
		if !isRT {
			return nil
		}
		out = append(out, rt)
	}
	return out
}

// FirstRTreeIndex returns the per-partition instances of any spatial
// index on the dataset, preferring one whose extractor was registered
// for the given field; nil when none exists. The enrichment planner uses
// it to decide between index-NLJ and per-batch R-tree builds.
func (d *Dataset) FirstRTreeIndex() []*RTreeIndex {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for name := range d.indexes {
		if out := d.rtreeLocked(name); out != nil {
			return out
		}
	}
	return nil
}

func (d *Dataset) rtreeLocked(name string) []*RTreeIndex {
	spec := d.indexes[name]
	out := make([]*RTreeIndex, 0, len(spec.perPartition))
	for _, ix := range spec.perPartition {
		rt, isRT := ix.(*RTreeIndex)
		if !isRT {
			return nil
		}
		out = append(out, rt)
	}
	return out
}

// Stats aggregates partition stats.
func (d *Dataset) Stats() Stats {
	var total Stats
	for _, p := range d.partitions {
		s := p.Stats()
		total.Gets += s.Gets
		total.Scans += s.Scans
		total.Upserts += s.Upserts
		total.Deletes += s.Deletes
		total.Flushes += s.Flushes
		total.Merges += s.Merges
		total.FlushedRuns += s.FlushedRuns
		total.Components += s.Components
		total.MemEntries += s.MemEntries
		total.FenceSkips += s.FenceSkips
		total.BloomSkips += s.BloomSkips
		total.BlockReads += s.BlockReads
		total.OpenRuns += s.OpenRuns
	}
	return total
}
