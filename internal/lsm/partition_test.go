package lsm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/ideadb/idea/internal/adm"
)

func rec(id int64, fields ...any) adm.Value {
	pairs := append([]any{"id", adm.Int(id)}, fields...)
	return adm.ObjectValue(adm.ObjectFromPairs(pairs...))
}

func smallOpts() Options {
	return Options{MemBudget: 16 << 10, MaxComponents: 4}
}

func TestPartitionUpsertGet(t *testing.T) {
	p := NewPartition(DefaultOptions())
	p.Upsert(adm.Int(1), rec(1, "v", adm.String("a")))
	got, ok := p.Get(adm.Int(1))
	if !ok || got.Field("v").StringVal() != "a" {
		t.Fatalf("Get = %v,%v", got, ok)
	}
	p.Upsert(adm.Int(1), rec(1, "v", adm.String("b")))
	got, _ = p.Get(adm.Int(1))
	if got.Field("v").StringVal() != "b" {
		t.Error("upsert should replace")
	}
	if _, ok := p.Get(adm.Int(2)); ok {
		t.Error("absent key should miss")
	}
}

func TestPartitionInsertDuplicate(t *testing.T) {
	p := NewPartition(DefaultOptions())
	if err := p.Insert(adm.Int(1), rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(adm.Int(1), rec(1)); err == nil {
		t.Error("duplicate insert must fail")
	}
}

func TestPartitionDelete(t *testing.T) {
	p := NewPartition(smallOpts())
	p.Upsert(adm.Int(1), rec(1))
	if !p.Delete(adm.Int(1)) {
		t.Error("delete of live record should report true")
	}
	if _, ok := p.Get(adm.Int(1)); ok {
		t.Error("deleted key still visible")
	}
	if p.Delete(adm.Int(2)) {
		t.Error("delete of absent key should report false")
	}
	// Deletes must also shadow flushed components.
	for i := int64(0); i < 500; i++ {
		p.Upsert(adm.Int(i), rec(i))
	}
	p.Snapshot() // force freeze
	p.Delete(adm.Int(100))
	if _, ok := p.Get(adm.Int(100)); ok {
		t.Error("tombstone must shadow frozen component")
	}
	snap := p.Snapshot()
	if _, ok := snap.Get(adm.Int(100)); ok {
		t.Error("snapshot must respect tombstone")
	}
}

func TestPartitionFlushAndMerge(t *testing.T) {
	p := NewPartition(smallOpts())
	const n = 2000
	for i := int64(0); i < n; i++ {
		p.Upsert(adm.Int(i), rec(i, "pad", adm.String("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")))
	}
	st := p.Stats()
	if st.Flushes == 0 {
		t.Error("expected flushes under small mem budget")
	}
	if st.Merges == 0 {
		t.Error("expected merges under small component cap")
	}
	if st.Components > smallOpts().MaxComponents+1 {
		t.Errorf("components = %d, exceeds cap", st.Components)
	}
	// All records still visible.
	for i := int64(0); i < n; i += 97 {
		if _, ok := p.Get(adm.Int(i)); !ok {
			t.Fatalf("key %d lost after flush/merge", i)
		}
	}
	if got := p.Len(); got != n {
		t.Errorf("Len = %d, want %d", got, n)
	}
}

func TestSnapshotIsStable(t *testing.T) {
	p := NewPartition(DefaultOptions())
	for i := int64(0); i < 100; i++ {
		p.Upsert(adm.Int(i), rec(i, "v", adm.Int(0)))
	}
	snap := p.Snapshot()
	// Mutate after the snapshot.
	for i := int64(0); i < 100; i++ {
		p.Upsert(adm.Int(i), rec(i, "v", adm.Int(1)))
	}
	p.Upsert(adm.Int(1000), rec(1000, "v", adm.Int(1)))
	count := 0
	snap.Scan(func(k, r adm.Value) bool {
		if r.Field("v").IntVal() != 0 {
			t.Fatalf("snapshot saw later write for key %s", k)
		}
		count++
		return true
	})
	if count != 100 {
		t.Errorf("snapshot scanned %d records, want 100", count)
	}
	if _, ok := snap.Get(adm.Int(1000)); ok {
		t.Error("snapshot saw record inserted after it was taken")
	}
	// A fresh snapshot sees the new state.
	if v, ok := p.Snapshot().Get(adm.Int(5)); !ok || v.Field("v").IntVal() != 1 {
		t.Error("new snapshot missed update")
	}
}

func TestSnapshotScanOrderedDeduped(t *testing.T) {
	p := NewPartition(smallOpts())
	// Write keys in shuffled order with several overwrites, forcing
	// multiple components.
	r := rand.New(rand.NewSource(3))
	for round := 0; round < 5; round++ {
		for _, k := range r.Perm(400) {
			p.Upsert(adm.Int(int64(k)), rec(int64(k), "round", adm.Int(int64(round)),
				"pad", adm.String("xxxxxxxxxxxxxxxxxxxxxxxxxxxxx")))
		}
		p.Snapshot() // freeze between rounds
	}
	snap := p.Snapshot()
	if snap.Components() < 2 {
		t.Skipf("expected multiple components, got %d", snap.Components())
	}
	prev := int64(-1)
	count := 0
	snap.Scan(func(k, rv adm.Value) bool {
		if k.IntVal() <= prev {
			t.Fatalf("scan out of order: %d after %d", k.IntVal(), prev)
		}
		if rv.Field("round").IntVal() != 4 {
			t.Fatalf("scan returned stale version for key %d: round %d",
				k.IntVal(), rv.Field("round").IntVal())
		}
		prev = k.IntVal()
		count++
		return true
	})
	if count != 400 {
		t.Errorf("scan visited %d, want 400", count)
	}
}

func TestSnapshotGetAcrossComponents(t *testing.T) {
	p := NewPartition(DefaultOptions())
	p.Upsert(adm.Int(1), rec(1, "v", adm.Int(1)))
	p.Snapshot()
	p.Upsert(adm.Int(1), rec(1, "v", adm.Int(2)))
	p.Upsert(adm.Int(2), rec(2, "v", adm.Int(9)))
	snap := p.Snapshot()
	if v, ok := snap.Get(adm.Int(1)); !ok || v.Field("v").IntVal() != 2 {
		t.Errorf("newest version must win: %v %v", v, ok)
	}
	if v, ok := snap.Get(adm.Int(2)); !ok || v.Field("v").IntVal() != 9 {
		t.Errorf("Get(2) = %v,%v", v, ok)
	}
}

func TestPartitionUpdateActivatesMemtable(t *testing.T) {
	// The Fig 27 mechanism: a quiescent partition has everything frozen;
	// a single update puts a live memtable back in the read path.
	p := NewPartition(DefaultOptions())
	for i := int64(0); i < 100; i++ {
		p.Upsert(adm.Int(i), rec(i))
	}
	p.Snapshot()
	if st := p.Stats(); st.MemEntries != 0 {
		t.Fatalf("memtable should be empty after snapshot freeze, has %d", st.MemEntries)
	}
	p.Upsert(adm.Int(5), rec(5, "v", adm.Int(1)))
	if st := p.Stats(); st.MemEntries != 1 {
		t.Fatalf("update should activate memtable, entries = %d", st.MemEntries)
	}
	// Repeated snapshot+update cycles grow then merge components.
	for i := 0; i < 20; i++ {
		p.Upsert(adm.Int(int64(i)), rec(int64(i), "v", adm.Int(2)))
		p.Snapshot()
	}
	st := p.Stats()
	if st.Merges == 0 {
		t.Error("update+snapshot churn should have triggered merges")
	}
}

func TestWALGroupCommit(t *testing.T) {
	w := NewWAL(5 * time.Millisecond)
	w.Append()
	w.Append()
	if w.LSN() != 2 {
		t.Fatalf("LSN = %d", w.LSN())
	}
	if w.Committed() != 0 {
		t.Fatal("nothing committed yet")
	}
	start := time.Now()
	w.Commit()
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("group commit returned too fast: %v", elapsed)
	}
	if w.Committed() != 2 || w.Commits() != 1 {
		t.Errorf("Committed=%d Commits=%d", w.Committed(), w.Commits())
	}
	// Zero-latency WAL must not sleep.
	w0 := NewWAL(0)
	w0.Append()
	start = time.Now()
	w0.Commit()
	if time.Since(start) > 2*time.Millisecond {
		t.Error("zero group commit should be immediate")
	}
}

func TestPartitionConcurrentReadersAndWriters(t *testing.T) {
	p := NewPartition(Options{MemBudget: 64 << 10, MaxComponents: 4})
	for i := int64(0); i < 1000; i++ {
		p.Upsert(adm.Int(i), rec(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: continuous upserts.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := r.Int63n(1000)
				p.Upsert(adm.Int(k), rec(k, "w", adm.Int(seed)))
			}
		}(int64(w))
	}
	// Readers: point gets and snapshot scans.
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 100))
			for i := 0; i < 200; i++ {
				if r.Intn(10) == 0 {
					n := 0
					p.Snapshot().Scan(func(adm.Value, adm.Value) bool {
						n++
						return n < 50
					})
				} else {
					p.Get(adm.Int(r.Int63n(1000)))
				}
			}
		}(int64(rdr))
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Give readers time to finish, then stop the writers.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent workload deadlocked")
	}
	if got := p.Len(); got != 1000 {
		t.Errorf("Len = %d, want 1000", got)
	}
}

func TestMergePreservesModel(t *testing.T) {
	// Randomized model check: upserts/deletes with frequent freezes must
	// always agree with a plain map.
	p := NewPartition(Options{MemBudget: 1 << 10, MaxComponents: 3})
	model := map[int64]int64{}
	r := rand.New(rand.NewSource(77))
	for op := 0; op < 5000; op++ {
		k := r.Int63n(300)
		switch r.Intn(4) {
		case 0:
			p.Delete(adm.Int(k))
			delete(model, k)
		default:
			v := r.Int63()
			p.Upsert(adm.Int(k), rec(k, "v", adm.Int(v)))
			model[k] = v
		}
		if op%500 == 0 {
			p.Snapshot()
		}
	}
	snap := p.Snapshot()
	count := 0
	snap.Scan(func(k, rv adm.Value) bool {
		mv, ok := model[k.IntVal()]
		if !ok {
			t.Fatalf("scan surfaced deleted key %d", k.IntVal())
		}
		if rv.Field("v").IntVal() != mv {
			t.Fatalf("stale value for key %d", k.IntVal())
		}
		count++
		return true
	})
	if count != len(model) {
		t.Fatalf("scan count %d != model %d", count, len(model))
	}
}

func TestStatsCounters(t *testing.T) {
	p := NewPartition(DefaultOptions())
	p.Upsert(adm.Int(1), rec(1))
	p.Get(adm.Int(1))
	p.Get(adm.Int(2))
	p.Delete(adm.Int(1))
	p.Snapshot()
	st := p.Stats()
	if st.Upserts != 1 || st.Gets != 2 || st.Deletes != 1 || st.Scans != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func BenchmarkPartitionUpsert(b *testing.B) {
	p := NewPartition(DefaultOptions())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := int64(i % 100000)
		p.Upsert(adm.Int(k), rec(k))
	}
}

func BenchmarkSnapshotScan100k(b *testing.B) {
	p := NewPartition(DefaultOptions())
	for i := int64(0); i < 100000; i++ {
		p.Upsert(adm.Int(i), rec(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		p.Snapshot().Scan(func(adm.Value, adm.Value) bool { n++; return true })
		if n != 100000 {
			b.Fatalf("scan saw %d", n)
		}
	}
}

func ExamplePartition() {
	p := NewPartition(DefaultOptions())
	p.Upsert(adm.Int(1), rec(1, "text", adm.String("let there be light")))
	v, _ := p.Get(adm.Int(1))
	fmt.Println(v.Field("text").StringVal())
	// Output: let there be light
}

// TestSnapshotCursorMatchesScan cross-checks the pull cursor against
// the callback scan over a partition with overwrites, deletes, and
// multiple frozen components (both tree-backed and merged slice runs).
func TestSnapshotCursorMatchesScan(t *testing.T) {
	p := NewPartition(smallOpts())
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		k := int64(r.Intn(800))
		switch r.Intn(10) {
		case 0:
			p.Delete(adm.Int(k))
		default:
			p.Upsert(adm.Int(k), rec(k, "round", adm.Int(int64(i))))
		}
	}
	snap := p.Snapshot()
	type kv struct{ k, round int64 }
	var want []kv
	snap.Scan(func(k, v adm.Value) bool {
		want = append(want, kv{k.IntVal(), v.Field("round").IntVal()})
		return true
	})
	cu := snap.Cursor()
	var got []kv
	for {
		k, v, ok := cu.Next()
		if !ok {
			break
		}
		got = append(got, kv{k.IntVal(), v.Field("round").IntVal()})
	}
	if len(got) != len(want) {
		t.Fatalf("cursor %d records, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: cursor %v, scan %v", i, got[i], want[i])
		}
	}
}

// TestSnapshotCursorEarlyStop verifies a cursor abandoned after k pulls
// leaves the partition fully usable (nothing is locked or consumed).
func TestSnapshotCursorEarlyStop(t *testing.T) {
	p := NewPartition(smallOpts())
	for i := int64(0); i < 500; i++ {
		p.Upsert(adm.Int(i), rec(i))
	}
	cu := p.Snapshot().Cursor()
	for i := 0; i < 10; i++ {
		k, _, ok := cu.Next()
		if !ok || k.IntVal() != int64(i) {
			t.Fatalf("pull %d = %v,%v", i, k, ok)
		}
	}
	// Writes proceed and a fresh snapshot sees everything.
	p.Upsert(adm.Int(999), rec(999))
	if n := p.Len(); n != 501 {
		t.Fatalf("Len after abandoned cursor = %d", n)
	}
}

// TestFrozenTreeComponentImmutable checks that writes after a freeze
// land in a fresh memtable and do not disturb an open cursor over the
// frozen tree.
func TestFrozenTreeComponentImmutable(t *testing.T) {
	p := NewPartition(smallOpts())
	for i := int64(0); i < 100; i++ {
		p.Upsert(adm.Int(i), rec(i, "v", adm.String("old")))
	}
	snap := p.Snapshot() // freezes the memtable (detaches the tree)
	cu := snap.Cursor()
	for i := int64(0); i < 100; i++ {
		p.Upsert(adm.Int(i), rec(i, "v", adm.String("new")))
	}
	n := 0
	for {
		_, v, ok := cu.Next()
		if !ok {
			break
		}
		if v.Field("v").StringVal() != "old" {
			t.Fatal("snapshot cursor observed post-snapshot write")
		}
		n++
	}
	if n != 100 {
		t.Fatalf("cursor saw %d records", n)
	}
	if v, _ := p.Get(adm.Int(3)); v.Field("v").StringVal() != "new" {
		t.Fatal("live read should see the new version")
	}
}
