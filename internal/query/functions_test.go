package query

import (
	"math/rand"
	"testing"

	"github.com/ideadb/idea/internal/adm"
)

// Edit distance is a metric: these properties catch off-by-one DP bugs
// that example-based tests miss.
func TestEditDistanceMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	randStr := func() string {
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(4)) // small alphabet → collisions
		}
		return string(b)
	}
	for i := 0; i < 3000; i++ {
		a, b, c := randStr(), randStr(), randStr()
		dab := EditDistance(a, b)
		dba := EditDistance(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: d(%q,%q)=%d, d(%q,%q)=%d", a, b, dab, b, a, dba)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("identity violated for %q, %q: %d", a, b, dab)
		}
		dac, dcb := EditDistance(a, c), EditDistance(c, b)
		if dab > dac+dcb {
			t.Fatalf("triangle inequality violated: d(%q,%q)=%d > %d+%d via %q",
				a, b, dab, dac, dcb, c)
		}
		// Distance is bounded by the longer string.
		bound := len(a)
		if len(b) > bound {
			bound = len(b)
		}
		if dab > bound {
			t.Fatalf("d(%q,%q)=%d exceeds max length %d", a, b, dab, bound)
		}
	}
}

func TestEditDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2},
		{"abc", "abc", 0}, {"abc", "axc", 1},
	}
	for _, tc := range cases {
		if got := EditDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// One insertion/deletion/substitution changes the distance by at most 1.
func TestEditDistanceSingleEditQuick(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		n := 1 + r.Intn(10)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + r.Intn(5))
		}
		orig := string(b)
		pos := r.Intn(n)
		mutated := orig[:pos] + string(rune('a'+r.Intn(5))) + orig[pos+1:]
		if d := EditDistance(orig, mutated); d > 1 {
			t.Fatalf("single substitution of %q -> %q gave distance %d", orig, mutated, d)
		}
	}
}

func TestSpatialIntersectsInvalidKinds(t *testing.T) {
	if _, ok := SpatialIntersects(adm.Int(1), adm.Point(0, 0)); ok {
		t.Error("non-spatial operand should be invalid")
	}
	if ok, valid := SpatialIntersects(adm.Circle(0, 0, 1), adm.Point(0.5, 0.5)); !valid || !ok {
		t.Error("circle/point order should work both ways")
	}
}

func TestGeometryBounds(t *testing.T) {
	if _, ok := GeometryBounds(adm.String("x")); ok {
		t.Error("non-geometry has no bounds")
	}
	r, ok := GeometryBounds(adm.Circle(1, 1, 2))
	if !ok || r.Min.X != -1 || r.Max.Y != 3 {
		t.Errorf("circle bounds = %+v", r)
	}
}
