package query

import "errors"

// Sentinel errors shared with the public API: the root package aliases
// these (idea.ErrUnknownDataset, idea.ErrUnknownFunction), so a lazy
// failure surfacing from a cursor keeps its identity all the way out —
// including across the wire protocol, which maps sentinels to error
// codes with errors.Is.
var (
	// ErrUnknownDataset reports a reference to a dataset that was never
	// created (or was dropped).
	ErrUnknownDataset = errors.New("idea: unknown dataset")
	// ErrUnknownFunction reports a call to a function missing from the
	// catalog.
	ErrUnknownFunction = errors.New("idea: unknown function")
)
