package query

import (
	"strings"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// testCatalog is a minimal in-memory catalog for engine tests.
type testCatalog struct {
	datasets  map[string]*lsm.Dataset
	functions map[string]*Function
	natives   map[string]func([]adm.Value) (adm.Value, error)
}

func newTestCatalog() *testCatalog {
	return &testCatalog{
		datasets:  map[string]*lsm.Dataset{},
		functions: map[string]*Function{},
		natives:   map[string]func([]adm.Value) (adm.Value, error){},
	}
}

func (c *testCatalog) Dataset(name string) (*lsm.Dataset, bool) {
	ds, ok := c.datasets[name]
	return ds, ok
}

func (c *testCatalog) Function(name string) (*Function, bool) {
	f, ok := c.functions[name]
	return f, ok
}

func (c *testCatalog) Native(ns, name string) (func([]adm.Value) (adm.Value, error), bool) {
	f, ok := c.natives[ns+"#"+name]
	return f, ok
}

func (c *testCatalog) addDataset(t *testing.T, name, pk string, parts int, recs ...adm.Value) *lsm.Dataset {
	t.Helper()
	ds, err := lsm.NewDataset(name, nil, pk, parts, lsm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := ds.Upsert(r); err != nil {
			t.Fatal(err)
		}
	}
	c.datasets[name] = ds
	return ds
}

func (c *testCatalog) addSQLFunction(t *testing.T, ddl string) *Function {
	t.Helper()
	stmts, err := sqlpp.Parse(ddl)
	if err != nil {
		t.Fatal(err)
	}
	cf := stmts[0].(*sqlpp.CreateFunction)
	fn := &Function{Name: cf.Name, Params: cf.Params, Body: cf.Body}
	c.functions[cf.Name] = fn
	return fn
}

func obj(pairs ...any) adm.Value { return adm.ObjectValue(adm.ObjectFromPairs(pairs...)) }

func evalStr(t *testing.T, cat Catalog, env *Env, src string) adm.Value {
	t.Helper()
	e, err := sqlpp.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(NewContext(cat), env, e)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalScalars(t *testing.T) {
	cat := newTestCatalog()
	env := Bind(nil, "t", obj("a", adm.Int(5), "s", adm.String("hello world"),
		"nested", obj("x", adm.Double(2.5))))
	cases := []struct {
		src  string
		want adm.Value
	}{
		{`1 + 2 * 3`, adm.Int(7)},
		{`(1 + 2) * 3`, adm.Int(9)},
		{`10 / 4`, adm.Double(2.5)},
		{`7 % 3`, adm.Int(1)},
		{`-t.a`, adm.Int(-5)},
		{`t.a + 1.5`, adm.Double(6.5)},
		{`t.a = 5`, adm.Bool(true)},
		{`t.a != 5`, adm.Bool(false)},
		{`t.a < 6 AND t.a > 4`, adm.Bool(true)},
		{`t.a < 4 OR t.a > 4`, adm.Bool(true)},
		{`NOT (t.a = 5)`, adm.Bool(false)},
		{`t.nested.x`, adm.Double(2.5)},
		{`t.nope`, adm.Missing()},
		{`t.nope = 1`, adm.Null()},
		{`contains(t.s, "world")`, adm.Bool(true)},
		{`contains(t.s, "bomb")`, adm.Bool(false)},
		{`upper("ab")`, adm.String("AB")},
		{`lower("AB")`, adm.String("ab")},
		{`length(t.s)`, adm.Int(11)},
		{`edit_distance("kitten", "sitting")`, adm.Int(3)},
		{`edit_distance("", "abc")`, adm.Int(3)},
		{`abs(-3)`, adm.Int(3)},
		{`sqrt(9.0)`, adm.Double(3)},
		{`"a" + "b"`, adm.String("ab")},
		{`CASE WHEN t.a = 5 THEN "five" ELSE "other" END`, adm.String("five")},
		{`CASE t.a WHEN 4 THEN "four" WHEN 5 THEN "five" END`, adm.String("five")},
		{`CASE t.a WHEN 4 THEN "four" END`, adm.Null()},
		{`5 IN [1, 2, 5]`, adm.Bool(true)},
		{`5 NOT IN [1, 2, 5]`, adm.Bool(false)},
		{`[1, 2, 3][1]`, adm.Int(2)},
		{`{"k": t.a}.k`, adm.Int(5)},
		{`spatial_distance(create_point(0.0, 0.0), create_point(3.0, 4.0))`, adm.Double(5)},
		{`spatial_intersect(create_point(1.0, 1.0), create_circle(create_point(0.0, 0.0), 1.5))`, adm.Bool(true)},
		{`spatial_intersect(create_point(2.0, 2.0), create_circle(create_point(0.0, 0.0), 1.5))`, adm.Bool(false)},
	}
	for _, tc := range cases {
		got := evalStr(t, cat, env, tc.src)
		if adm.Compare(got, tc.want) != 0 {
			t.Errorf("eval(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalDatetimeDurationArith(t *testing.T) {
	cat := newTestCatalog()
	env := Bind(nil, "t", obj("created_at", adm.DateTimeMillis(1_000_000)))
	got := evalStr(t, cat, env, `t.created_at < datetime("2019-08-23T00:00:00Z")`)
	if !got.BoolVal() {
		t.Error("datetime comparison failed")
	}
	got = evalStr(t, cat, env, `t.created_at + duration("PT1S")`)
	if got.DateTimeVal() != 1_001_000 {
		t.Errorf("datetime+duration = %v", got)
	}
	got = evalStr(t, cat, env, `t.created_at - duration("PT1S")`)
	if got.DateTimeVal() != 999_000 {
		t.Errorf("datetime-duration = %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	cat := newTestCatalog()
	for _, src := range []string{
		`nosuchvar`,
		`nosuchfn(1)`,
		`lib#nothere(1)`,
		`duration("bogus")`,
		`count(*)`,
	} {
		e, err := sqlpp.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if _, err := Eval(NewContext(cat), nil, e); err == nil {
			t.Errorf("Eval(%s) should fail", src)
		}
	}
}

func TestEvalNativeNamespacedCall(t *testing.T) {
	cat := newTestCatalog()
	cat.natives["testlib#removeSpecial"] = func(args []adm.Value) (adm.Value, error) {
		s := strings.Map(func(r rune) rune {
			if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
				return r
			}
			return -1
		}, args[0].StringVal())
		return adm.String(strings.ToLower(s)), nil
	}
	env := Bind(nil, "x", obj("user", obj("screen_name", adm.String("Al_i-ce9!"))))
	got := evalStr(t, cat, env, `testlib#removeSpecial(x.user.screen_name)`)
	if got.StringVal() != "alice" {
		t.Errorf("native call = %v", got)
	}
}

func TestEvalCatalogSQLFunction(t *testing.T) {
	cat := newTestCatalog()
	cat.addSQLFunction(t, `CREATE FUNCTION double_it(x) { x + x };`)
	got := evalStr(t, cat, nil, `double_it(21)`)
	if got.IntVal() != 42 {
		t.Errorf("udf call = %v", got)
	}
	// Arity mismatch errors.
	e, _ := sqlpp.ParseExpr(`double_it(1, 2)`)
	if _, err := Eval(NewContext(cat), nil, e); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestEvalRecursionGuard(t *testing.T) {
	cat := newTestCatalog()
	cat.addSQLFunction(t, `CREATE FUNCTION loop_forever(x) { loop_forever(x) };`)
	e, _ := sqlpp.ParseExpr(`loop_forever(1)`)
	if _, err := Eval(NewContext(cat), nil, e); err == nil {
		t.Error("runaway recursion should be caught")
	}
}

func TestAggregateAsScalarOverArray(t *testing.T) {
	cat := newTestCatalog()
	env := Bind(nil, "xs", adm.Array([]adm.Value{adm.Int(1), adm.Int(2), adm.Int(3), adm.Null()}))
	if got := evalStr(t, cat, env, `sum(xs)`); got.IntVal() != 6 {
		t.Errorf("sum = %v", got)
	}
	if got := evalStr(t, cat, env, `count(xs)`); got.IntVal() != 3 {
		t.Errorf("count = %v (nulls don't count)", got)
	}
	if got := evalStr(t, cat, env, `avg(xs)`); got.DoubleVal() != 2 {
		t.Errorf("avg = %v", got)
	}
	if got := evalStr(t, cat, env, `min(xs)`); got.IntVal() != 1 {
		t.Errorf("min = %v", got)
	}
	if got := evalStr(t, cat, env, `max(xs)`); got.IntVal() != 3 {
		t.Errorf("max = %v", got)
	}
}
