package query

import (
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// PreparedEnrich is the batch-scoped state of an enrichment plan: the
// paper's "intermediate states". One is built per computing-job
// invocation (Prepare), used concurrently by every evaluator in the job
// (EvalRecord is safe for parallel use), and discarded with the job — so
// the next invocation observes reference-data updates.
type PreparedEnrich struct {
	plan   *EnrichPlan
	ctx    *Context
	consts map[*sqlpp.SelectExpr]adm.Value
	probes map[*sqlpp.SelectExpr]*preparedSub
}

type preparedSub struct {
	plan     *subPlan
	accesses []*preparedAccess
}

type hashEntry struct {
	key adm.Value
	rec adm.Value
}

type preparedAccess struct {
	plan *accessPlan

	hash map[uint64][]hashEntry // accessHash

	rtrees []*index.RTree // accessRTree, sharded per partition

	shards [][]adm.Value // accessScan

	liveIndexes []*lsm.RTreeIndex // accessIndexNLJ
	liveDataset *lsm.Dataset      // accessIndexNLJ (fresh point reads)
}

// Prepare builds the batch state from fresh snapshots, parallelizing the
// reference scans across partitions (the cluster's computing job runs
// one build worker per node). It is the per-invocation cost the paper's
// batch-size experiments measure.
func (plan *EnrichPlan) Prepare(cat Catalog) (*PreparedEnrich, error) {
	pe := &PreparedEnrich{
		plan:   plan,
		ctx:    NewContext(cat),
		consts: make(map[*sqlpp.SelectExpr]adm.Value),
		probes: make(map[*sqlpp.SelectExpr]*preparedSub),
	}
	for _, sel := range plan.order {
		sp := plan.subs[sel]
		switch sp.kind {
		case constSub:
			v, err := ExecuteSelect(pe.ctx, nil, sel)
			if err != nil {
				return nil, fmt.Errorf("query: %s: const subquery: %w", plan.Name, err)
			}
			pe.consts[sel] = v
		case probeSub:
			ps := &preparedSub{plan: sp}
			for i := range sp.accesses {
				pa, err := pe.buildAccess(&sp.accesses[i])
				if err != nil {
					return nil, fmt.Errorf("query: %s: build %s: %w", plan.Name, sp.accesses[i].dataset, err)
				}
				ps.accesses = append(ps.accesses, pa)
			}
			pe.probes[sel] = ps
		}
	}
	return pe, nil
}

func (pe *PreparedEnrich) buildAccess(acc *accessPlan) (*preparedAccess, error) {
	pa := &preparedAccess{plan: acc}
	if acc.kind == accessIndexNLJ {
		ds, err := datasetFor(pe.ctx.Catalog, acc.dataset)
		if err != nil {
			return nil, err
		}
		idx := ds.RTreeIndexForField(acc.indexField)
		if idx == nil {
			return nil, fmt.Errorf("index on %s.%s vanished", acc.dataset, acc.indexField)
		}
		pa.liveIndexes = idx
		pa.liveDataset = ds
		return pa, nil
	}

	snaps, err := pe.ctx.Pin(acc.dataset)
	if err != nil {
		return nil, err
	}

	// Scan partitions in parallel; each worker produces its shard.
	type shardResult struct {
		entries []hashEntry  // accessHash
		tree    *index.RTree // accessRTree
		recs    []adm.Value  // accessScan
		err     error
	}
	results := make([]shardResult, len(snaps))
	var wg sync.WaitGroup
	for i, snap := range snaps {
		wg.Add(1)
		go func(i int, snap *lsm.Snapshot) {
			defer wg.Done()
			res := &results[i]
			if acc.kind == accessRTree {
				res.tree = index.NewRTree()
			}
			st := evalState{ctx: pe.ctx}
			snap.Scan(func(_, rec adm.Value) bool {
				env := Bind(nil, acc.alias, rec)
				for _, f := range acc.filters {
					v, err := eval(st, env, f)
					if err != nil {
						res.err = err
						return false
					}
					if !Truthy(v) {
						return true
					}
				}
				switch acc.kind {
				case accessHash:
					key, err := eval(st, env, acc.buildKey)
					if err != nil {
						res.err = err
						return false
					}
					if key.IsUnknown() {
						return true
					}
					res.entries = append(res.entries, hashEntry{key: key, rec: rec})
				case accessRTree:
					g, err := eval(st, env, acc.buildRect)
					if err != nil {
						res.err = err
						return false
					}
					rect, ok := GeometryBounds(g)
					if !ok {
						return true
					}
					res.tree.Insert(rect, rec)
				default: // accessScan
					res.recs = append(res.recs, rec)
				}
				return true
			})
		}(i, snap)
	}
	wg.Wait()

	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
	}
	switch acc.kind {
	case accessHash:
		total := 0
		for i := range results {
			total += len(results[i].entries)
		}
		pa.hash = make(map[uint64][]hashEntry, total)
		for i := range results {
			for _, e := range results[i].entries {
				h := adm.Hash(e.key)
				pa.hash[h] = append(pa.hash[h], e)
			}
		}
	case accessRTree:
		pa.rtrees = make([]*index.RTree, len(results))
		for i := range results {
			pa.rtrees[i] = results[i].tree
		}
	default:
		pa.shards = make([][]adm.Value, len(results))
		for i := range results {
			pa.shards[i] = results[i].recs
		}
	}
	return pa, nil
}

// EvalRecord enriches one record: the probe phase. A single-element
// result collection is unwrapped to the record itself, which is what the
// feed pipeline stores.
func (pe *PreparedEnrich) EvalRecord(rec adm.Value) (adm.Value, error) {
	st := evalState{ctx: pe.ctx, prepared: pe}
	env := Bind(nil, pe.plan.param, rec)
	v, err := eval(st, env, pe.plan.body)
	if err != nil {
		return adm.Value{}, err
	}
	if v.Kind() == adm.KindArray && len(v.ArrayVal()) == 1 {
		return v.Index(0), nil
	}
	return v, nil
}

// Context exposes the pinned evaluation context (tests inspect it).
func (pe *PreparedEnrich) Context() *Context { return pe.ctx }

// evalCompiled intercepts a compiled subquery during expression
// evaluation. ok=false means the subquery was not compiled and the
// caller should use the generic path.
func (pe *PreparedEnrich) evalCompiled(st evalState, env *Env, sel *sqlpp.SelectExpr) (adm.Value, bool, error) {
	if v, isConst := pe.consts[sel]; isConst {
		return v, true, nil
	}
	ps, isProbe := pe.probes[sel]
	if !isProbe {
		return adm.Value{}, false, nil
	}
	var tuples []*Env
	err := ps.forEachTuple(st, env, func(tu *Env) bool {
		tuples = append(tuples, tu)
		return true
	})
	if err != nil {
		return adm.Value{}, true, err
	}
	v, err := finishSelect(st.noGroup(), sel, tuples)
	return v, true, err
}

// evalCompiledExists intercepts EXISTS over a compiled subquery with
// early termination at the first qualifying tuple.
func (pe *PreparedEnrich) evalCompiledExists(st evalState, env *Env, sel *sqlpp.SelectExpr) (bool, bool, error) {
	if v, isConst := pe.consts[sel]; isConst {
		return len(v.ArrayVal()) > 0, true, nil
	}
	ps, isProbe := pe.probes[sel]
	if !isProbe {
		return false, false, nil
	}
	found := false
	err := ps.forEachTuple(st, env, func(*Env) bool {
		found = true
		return false
	})
	return found, true, err
}

// forEachTuple streams candidate tuples: anchor probe, join expansion,
// FROM-LET binding, then residual filtering. fn returning false stops
// the enumeration (EXISTS early-out).
func (ps *preparedSub) forEachTuple(st evalState, env *Env, fn func(*Env) bool) error {
	st = st.noGroup()
	var expand func(level int, tu *Env) (bool, error)
	expand = func(level int, tu *Env) (bool, error) {
		if level == len(ps.accesses) {
			for _, l := range ps.plan.sel.FromLets {
				v, err := eval(st, tu, l.Expr)
				if err != nil {
					return false, err
				}
				tu = Bind(tu, l.Name, v)
			}
			for _, r := range ps.plan.residuals {
				v, err := eval(st, tu, r)
				if err != nil {
					return false, err
				}
				if !Truthy(v) {
					return true, nil
				}
			}
			return fn(tu), nil
		}
		pa := ps.accesses[level]
		cont := true
		var inner error
		err := pa.probe(st, tu, func(rec adm.Value) bool {
			keepGoing, perr := expand(level+1, Bind(tu, pa.plan.alias, rec))
			if perr != nil {
				inner = perr
				cont = false
				return false
			}
			if !keepGoing {
				cont = false
				return false
			}
			return true
		})
		if err != nil {
			return false, err
		}
		if inner != nil {
			return false, inner
		}
		return cont, nil
	}
	_, err := expand(0, env)
	return err
}

// probe enumerates the records this access yields for the current outer
// bindings.
func (pa *preparedAccess) probe(st evalState, env *Env, fn func(adm.Value) bool) error {
	acc := pa.plan
	switch acc.kind {
	case accessHash:
		key, err := eval(st, env, acc.probeKey)
		if err != nil {
			return err
		}
		if key.IsUnknown() {
			return nil
		}
		for _, e := range pa.hash[adm.Hash(key)] {
			if adm.Equal(e.key, key) {
				if !fn(e.rec) {
					return nil
				}
			}
		}
	case accessRTree:
		g, err := eval(st, env, acc.probeRect)
		if err != nil {
			return err
		}
		rect, ok := GeometryBounds(g)
		if !ok {
			return nil
		}
		for _, tree := range pa.rtrees {
			stopped := false
			tree.Search(rect, func(e index.RTreeEntry) bool {
				if !fn(e.Data.(adm.Value)) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return nil
			}
		}
	case accessIndexNLJ:
		g, err := eval(st, env, acc.probeRect)
		if err != nil {
			return err
		}
		rect, ok := GeometryBounds(g)
		if !ok {
			return nil
		}
		if acc.expand > 0 {
			rect = rect.Expand(acc.expand)
		}
		for _, ix := range pa.liveIndexes {
			for _, pk := range ix.Search(rect) {
				rec, found := pa.liveDataset.Get(pk) // fresh read, per paper
				if !found {
					continue
				}
				if keep, err := pa.passesFilters(st, rec); err != nil {
					return err
				} else if !keep {
					continue
				}
				if !fn(rec) {
					return nil
				}
			}
		}
	default: // accessScan
		for _, shard := range pa.shards {
			for _, rec := range shard {
				if !fn(rec) {
					return nil
				}
			}
		}
	}
	return nil
}

// passesFilters applies alias-only filters at probe time (index-NLJ
// cannot pre-filter its index).
func (pa *preparedAccess) passesFilters(st evalState, rec adm.Value) (bool, error) {
	if len(pa.plan.filters) == 0 {
		return true, nil
	}
	env := Bind(nil, pa.plan.alias, rec)
	for _, f := range pa.plan.filters {
		v, err := eval(st, env, f)
		if err != nil {
			return false, err
		}
		if !Truthy(v) {
			return false, nil
		}
	}
	return true, nil
}
