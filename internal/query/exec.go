package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// ExecuteSelect runs a query block with straightforward iterate-and-
// filter semantics and returns its result collection. It is the general-
// purpose path: analytical queries (the paper's Option 1), constant
// subqueries during the enrichment build phase, and any construct the
// specialized probe planner declines.
func ExecuteSelect(ctx *Context, env *Env, sel *sqlpp.SelectExpr) (adm.Value, error) {
	return executeSelect(evalState{ctx: ctx}, env, sel)
}

func executeSelect(st evalState, env *Env, sel *sqlpp.SelectExpr) (adm.Value, error) {
	st, err := st.deeper()
	if err != nil {
		return adm.Value{}, err
	}
	// Leading LETs (paper UDF style) bind before anything else.
	for _, l := range sel.Lets {
		v, err := eval(st, env, l.Expr)
		if err != nil {
			return adm.Value{}, err
		}
		env = Bind(env, l.Name, v)
	}

	// FROM fan-out: nested-loop tuple construction.
	tuples := []*Env{env}
	for _, fc := range sel.From {
		var next []*Env
		for _, tu := range tuples {
			if err := st.ctx.Err(); err != nil {
				return adm.Value{}, err
			}
			coll, err := fromCollection(st, tu, fc.Source)
			if err != nil {
				return adm.Value{}, err
			}
			for _, rec := range coll {
				next = append(next, Bind(tu, fc.Alias, rec))
			}
		}
		tuples = next
	}

	// FROM-position LETs bind per tuple.
	for _, l := range sel.FromLets {
		for i, tu := range tuples {
			v, err := eval(st, tu, l.Expr)
			if err != nil {
				return adm.Value{}, err
			}
			tuples[i] = Bind(tu, l.Name, v)
		}
	}

	// WHERE.
	if sel.Where != nil {
		kept := tuples[:0]
		for _, tu := range tuples {
			if err := st.ctx.Err(); err != nil {
				return adm.Value{}, err
			}
			v, err := eval(st, tu, sel.Where)
			if err != nil {
				return adm.Value{}, err
			}
			if Truthy(v) {
				kept = append(kept, tu)
			}
		}
		tuples = kept
	}

	return finishSelect(st, sel, tuples)
}

// fromCollection resolves a FROM source into a record slice: an
// in-scope binding (LET/parameter), a dataset scan over the pinned
// snapshots, or any collection-valued expression.
func fromCollection(st evalState, env *Env, src sqlpp.Expr) ([]adm.Value, error) {
	if id, ok := src.(*sqlpp.Ident); ok {
		if v, bound := env.Lookup(id.Name); bound {
			return collectionElems(v, id.Name)
		}
		if st.ctx.Catalog != nil {
			if _, isDS := st.ctx.Catalog.Dataset(id.Name); isDS {
				snaps, err := st.ctx.Pin(id.Name)
				if err != nil {
					return nil, err
				}
				var recs []adm.Value
				for _, s := range snaps {
					s.Scan(func(_, rec adm.Value) bool {
						recs = append(recs, rec)
						return true
					})
				}
				return recs, nil
			}
		}
		return nil, fmt.Errorf("%w: FROM source %q is neither a binding nor a dataset", ErrUnknownDataset, id.Name)
	}
	v, err := eval(st, env, src)
	if err != nil {
		return nil, err
	}
	return collectionElems(v, "expression")
}

func collectionElems(v adm.Value, what string) ([]adm.Value, error) {
	switch v.Kind() {
	case adm.KindArray:
		return v.ArrayVal(), nil
	case adm.KindMissing, adm.KindNull:
		return nil, nil
	default:
		// A single object iterates as a one-element collection, matching
		// SQL++'s forgiving FROM semantics for non-arrays.
		return []adm.Value{v}, nil
	}
}

// finishSelect applies grouping, ordering, limiting, and projection to a
// prepared tuple stream. The enrichment probe path calls this directly
// with its candidate tuples.
func finishSelect(st evalState, sel *sqlpp.SelectExpr, tuples []*Env) (adm.Value, error) {
	type row struct {
		env     *Env
		group   []*Env
		grouped bool
	}
	var rows []row

	grouped := len(sel.GroupBy) > 0 || selectHasAggregate(sel)
	if grouped {
		groups, err := groupTuples(st, sel.GroupBy, tuples)
		if err != nil {
			return adm.Value{}, err
		}
		for _, g := range groups {
			rows = append(rows, row{env: g.repEnv, group: g.tuples, grouped: true})
		}
	} else {
		for _, tu := range tuples {
			rows = append(rows, row{env: tu})
		}
	}

	// rowState applies the group context only for grouped rows (an empty
	// group must still evaluate aggregates as aggregates).
	rowState := func(r row) evalState {
		if r.grouped {
			return st.withGroup(r.group)
		}
		return st.noGroup()
	}

	// ORDER BY.
	if len(sel.OrderBy) > 0 {
		type keyed struct {
			r    row
			keys []adm.Value
		}
		ks := make([]keyed, len(rows))
		for i, r := range rows {
			keys := make([]adm.Value, len(sel.OrderBy))
			for j, ob := range sel.OrderBy {
				v, err := eval(rowState(r), r.env, ob.Expr)
				if err != nil {
					return adm.Value{}, err
				}
				keys[j] = v
			}
			ks[i] = keyed{r, keys}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for j, ob := range sel.OrderBy {
				c := adm.Compare(ks[a].keys[j], ks[b].keys[j])
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		for i := range rows {
			rows[i] = ks[i].r
		}
	}

	// LIMIT. DISTINCT dedupes projected rows, so with DISTINCT the limit
	// must apply after projection+dedupe (LIMIT n means n distinct rows);
	// without it the limit truncates the row set before projecting.
	limit := -1
	if sel.Limit != nil {
		lv, err := eval(st, nil, sel.Limit)
		if err != nil {
			return adm.Value{}, err
		}
		n, ok := lv.AsInt()
		if !ok || n < 0 {
			return adm.Value{}, fmt.Errorf("query: LIMIT must be a non-negative integer")
		}
		limit = int(n)
	}
	if limit >= 0 && !sel.Distinct && limit < len(rows) {
		rows = rows[:limit]
	}

	// Projection.
	out := make([]adm.Value, 0, len(rows))
	for _, r := range rows {
		if err := st.ctx.Err(); err != nil {
			return adm.Value{}, err
		}
		v, err := projectRow(rowState(r), r.env, sel)
		if err != nil {
			return adm.Value{}, err
		}
		out = append(out, v)
	}

	if sel.Distinct {
		out = dedupe(out)
		if limit >= 0 && limit < len(out) {
			out = out[:limit]
		}
	}
	return adm.Array(out), nil
}

type groupInfo struct {
	repEnv *Env
	tuples []*Env
}

// groupTuples hashes tuples into groups by the GROUP BY keys. Grouping
// aliases are bound in the representative env; select expressions that
// reference the grouping expression re-evaluate it against the
// representative tuple (valid because it is functionally dependent on
// the key).
func groupTuples(st evalState, keys []sqlpp.GroupKey, tuples []*Env) ([]groupInfo, error) {
	if len(keys) == 0 {
		// Aggregate query without GROUP BY: one group of everything.
		var rep *Env
		if len(tuples) > 0 {
			rep = tuples[0]
		}
		return []groupInfo{{repEnv: rep, tuples: tuples}}, nil
	}
	index := make(map[uint64][]int)
	var groups []groupInfo
	var groupKeys [][]adm.Value
	for _, tu := range tuples {
		kv := make([]adm.Value, len(keys))
		for i, k := range keys {
			v, err := eval(st, tu, k.Expr)
			if err != nil {
				return nil, err
			}
			kv[i] = v
		}
		h := adm.Hash(adm.Array(kv))
		found := -1
		for _, gi := range index[h] {
			if sameKeys(groupKeys[gi], kv) {
				found = gi
				break
			}
		}
		if found < 0 {
			rep := tu
			for i, k := range keys {
				if k.Alias != "" {
					rep = Bind(rep, k.Alias, kv[i])
				}
			}
			groups = append(groups, groupInfo{repEnv: rep})
			groupKeys = append(groupKeys, kv)
			found = len(groups) - 1
			index[h] = append(index[h], found)
		}
		groups[found].tuples = append(groups[found].tuples, tu)
	}
	return groups, nil
}

func sameKeys(a, b []adm.Value) bool {
	for i := range a {
		if !adm.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func dedupe(vals []adm.Value) []adm.Value {
	seen := make(map[uint64][]adm.Value)
	out := vals[:0]
	for _, v := range vals {
		h := adm.Hash(v)
		dup := false
		for _, prev := range seen[h] {
			if adm.Equal(prev, v) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], v)
			out = append(out, v)
		}
	}
	return out
}

// projectRow evaluates the SELECT clause for one row (st.group is set
// for grouped rows so aggregates resolve).
func projectRow(st evalState, env *Env, sel *sqlpp.SelectExpr) (adm.Value, error) {
	if sel.SelectValue != nil {
		return eval(st, env, sel.SelectValue)
	}
	obj := adm.NewObject(len(sel.Projections))
	for i, proj := range sel.Projections {
		switch {
		case proj.Star && proj.Expr == nil:
			// Bare `*`: splice the innermost FROM binding when there is
			// exactly one; otherwise include each alias as a field.
			if len(sel.From) == 1 {
				v, ok := env.Lookup(sel.From[0].Alias)
				if !ok {
					return adm.Value{}, fmt.Errorf("query: alias %q not bound", sel.From[0].Alias)
				}
				if v.Kind() == adm.KindObject {
					spliceInto(obj, v)
					continue
				}
				obj.Set(sel.From[0].Alias, v)
				continue
			}
			for _, fc := range sel.From {
				if v, ok := env.Lookup(fc.Alias); ok {
					obj.Set(fc.Alias, v)
				}
			}
		case proj.Star:
			v, err := eval(st, env, proj.Expr)
			if err != nil {
				return adm.Value{}, err
			}
			if v.Kind() != adm.KindObject {
				return adm.Value{}, fmt.Errorf("query: .* requires an object, got %s", v.Kind())
			}
			spliceInto(obj, v)
		default:
			v, err := eval(st, env, proj.Expr)
			if err != nil {
				return adm.Value{}, err
			}
			obj.Set(projectionName(proj, i), v)
		}
	}
	return adm.ObjectValue(obj), nil
}

func spliceInto(dst *adm.Object, src adm.Value) {
	o := src.ObjectVal()
	for i := 0; i < o.Len(); i++ {
		dst.Set(o.Name(i), o.At(i))
	}
}

// projectionName derives the output field name: explicit alias, else the
// trailing path segment, else a positional placeholder ($1, $2 ...).
func projectionName(proj sqlpp.Projection, pos int) string {
	if proj.Alias != "" {
		return proj.Alias
	}
	switch e := proj.Expr.(type) {
	case *sqlpp.FieldAccess:
		return e.Field
	case *sqlpp.Ident:
		return e.Name
	}
	return fmt.Sprintf("$%d", pos+1)
}

// selectHasAggregate reports whether any projection, order key, or the
// SELECT VALUE expression contains an aggregate call (which forces
// single-group semantics when GROUP BY is absent).
func selectHasAggregate(sel *sqlpp.SelectExpr) bool {
	found := false
	check := func(e sqlpp.Expr) {
		if e != nil && exprHasAggregate(e) {
			found = true
		}
	}
	check(sel.SelectValue)
	for _, p := range sel.Projections {
		check(p.Expr)
	}
	for _, ob := range sel.OrderBy {
		check(ob.Expr)
	}
	return found
}

// exprHasAggregate walks an expression looking for aggregate calls,
// without descending into nested SELECT blocks (their aggregates are
// theirs).
func exprHasAggregate(e sqlpp.Expr) bool {
	switch n := e.(type) {
	case *sqlpp.Call:
		if n.Ns == "" && IsAggregate(strings.ToLower(n.Name)) {
			return true
		}
		for _, a := range n.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sqlpp.FieldAccess:
		return exprHasAggregate(n.Base)
	case *sqlpp.IndexAccess:
		return exprHasAggregate(n.Base) || exprHasAggregate(n.Index)
	case *sqlpp.Unary:
		return exprHasAggregate(n.X)
	case *sqlpp.Binary:
		return exprHasAggregate(n.L) || exprHasAggregate(n.R)
	case *sqlpp.CaseExpr:
		if n.Operand != nil && exprHasAggregate(n.Operand) {
			return true
		}
		for _, w := range n.Whens {
			if exprHasAggregate(w.When) || exprHasAggregate(w.Then) {
				return true
			}
		}
		if n.Else != nil {
			return exprHasAggregate(n.Else)
		}
	case *sqlpp.In:
		return exprHasAggregate(n.X) || exprHasAggregate(n.Coll)
	case *sqlpp.ArrayCtor:
		for _, el := range n.Elems {
			if exprHasAggregate(el) {
				return true
			}
		}
	case *sqlpp.ObjectCtor:
		for _, f := range n.Fields {
			if exprHasAggregate(f.Val) {
				return true
			}
		}
	}
	return false
}

// evalAggregate computes an aggregate call over the current group.
func evalAggregate(st evalState, call *sqlpp.Call) (adm.Value, error) {
	group := st.group
	inner := st.noGroup()
	if call.Star {
		if strings.ToLower(call.Name) != "count" {
			return adm.Value{}, fmt.Errorf("query: %s(*) is not a valid aggregate", call.Name)
		}
		return adm.Int(int64(len(group))), nil
	}
	if len(call.Args) != 1 {
		return adm.Value{}, fmt.Errorf("query: aggregate %s expects 1 argument", call.Name)
	}
	vals := make([]adm.Value, 0, len(group))
	for _, tu := range group {
		v, err := eval(inner, tu, call.Args[0])
		if err != nil {
			return adm.Value{}, err
		}
		vals = append(vals, v)
	}
	return aggregateOver(call.Name, vals)
}

// aggregateOver folds an aggregate over a value slice, skipping unknown
// values (SQL semantics).
func aggregateOver(name string, vals []adm.Value) (adm.Value, error) {
	name = strings.ToLower(name)
	switch name {
	case "count":
		n := int64(0)
		for _, v := range vals {
			if !v.IsUnknown() {
				n++
			}
		}
		return adm.Int(n), nil
	case "sum", "avg":
		sum := 0.0
		allInt := true
		n := 0
		for _, v := range vals {
			if v.IsUnknown() {
				continue
			}
			f, ok := v.AsDouble()
			if !ok {
				return adm.Null(), nil
			}
			if v.Kind() != adm.KindInt64 {
				allInt = false
			}
			sum += f
			n++
		}
		if n == 0 {
			return adm.Null(), nil
		}
		if strings.ToLower(name) == "avg" {
			return adm.Double(sum / float64(n)), nil
		}
		if allInt {
			return adm.Int(int64(sum)), nil
		}
		return adm.Double(sum), nil
	case "min", "max":
		var best adm.Value
		first := true
		for _, v := range vals {
			if v.IsUnknown() {
				continue
			}
			if first {
				best = v
				first = false
				continue
			}
			c := adm.Compare(v, best)
			if (name == "min" && c < 0) || (name == "max" && c > 0) {
				best = v
			}
		}
		if first {
			return adm.Null(), nil
		}
		return best, nil
	}
	return adm.Value{}, fmt.Errorf("query: unknown aggregate %q", name)
}
