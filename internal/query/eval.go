package query

import (
	"fmt"
	"strings"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// Eval evaluates a SQL++ expression in the given environment. It is the
// public entry point for ad-hoc expression evaluation; queries go
// through ExecuteSelect.
func Eval(ctx *Context, env *Env, e sqlpp.Expr) (adm.Value, error) {
	return eval(evalState{ctx: ctx}, env, e)
}

func eval(st evalState, env *Env, e sqlpp.Expr) (adm.Value, error) {
	switch n := e.(type) {
	case *sqlpp.Literal:
		return n.Val, nil
	case *sqlpp.Ident:
		if v, ok := env.Lookup(n.Name); ok {
			return v, nil
		}
		return adm.Value{}, fmt.Errorf("query: unbound variable %q", n.Name)
	case *sqlpp.Param:
		if v, ok := st.ctx.Params[n.Name]; ok {
			return v, nil
		}
		return adm.Value{}, fmt.Errorf("query: unbound parameter $%s (offset %d): no argument was supplied", n.Name, n.Off)
	case *sqlpp.FieldAccess:
		base, err := eval(st, env, n.Base)
		if err != nil {
			return adm.Value{}, err
		}
		return base.Field(n.Field), nil
	case *sqlpp.IndexAccess:
		base, err := eval(st, env, n.Base)
		if err != nil {
			return adm.Value{}, err
		}
		idx, err := eval(st, env, n.Index)
		if err != nil {
			return adm.Value{}, err
		}
		i, ok := idx.AsInt()
		if !ok {
			return adm.Missing(), nil
		}
		return base.Index(int(i)), nil
	case *sqlpp.Call:
		return evalCall(st, env, n)
	case *sqlpp.Unary:
		return evalUnary(st, env, n)
	case *sqlpp.Binary:
		return evalBinary(st, env, n)
	case *sqlpp.CaseExpr:
		return evalCase(st, env, n)
	case *sqlpp.Exists:
		return evalExists(st, env, n)
	case *sqlpp.In:
		return evalIn(st, env, n)
	case *sqlpp.SubqueryExpr:
		return evalSubquery(st, env, n.Sel)
	case *sqlpp.ArrayCtor:
		elems := make([]adm.Value, len(n.Elems))
		for i, el := range n.Elems {
			v, err := eval(st, env, el)
			if err != nil {
				return adm.Value{}, err
			}
			elems[i] = v
		}
		return adm.Array(elems), nil
	case *sqlpp.ObjectCtor:
		o := adm.NewObject(len(n.Fields))
		for _, f := range n.Fields {
			v, err := eval(st, env, f.Val)
			if err != nil {
				return adm.Value{}, err
			}
			o.Set(f.Key, v)
		}
		return adm.ObjectValue(o), nil
	case *sqlpp.SelectExpr:
		return evalSubquery(st, env, n)
	}
	return adm.Value{}, fmt.Errorf("query: unsupported expression %T", e)
}

// evalSubquery routes a SELECT used as an expression either to the
// prepared enrichment probe (when compiled) or to the generic executor.
func evalSubquery(st evalState, env *Env, sel *sqlpp.SelectExpr) (adm.Value, error) {
	if st.prepared != nil {
		if v, ok, err := st.prepared.evalCompiled(st, env, sel); ok || err != nil {
			return v, err
		}
	}
	return executeSelect(st.noGroup(), env, sel)
}

func evalCall(st evalState, env *Env, call *sqlpp.Call) (adm.Value, error) {
	// Aggregates: only meaningful with a group context; as a scalar they
	// fall through to the collection (array_*) interpretation below.
	if call.Ns == "" && IsAggregate(strings.ToLower(call.Name)) {
		if st.aggVals != nil {
			// Streaming hash aggregate: the group was folded into
			// per-call accumulators as tuples flowed by; a call missing
			// from the map means the collector failed to enumerate it.
			if v, ok := st.aggVals[call]; ok {
				return v, nil
			}
			return adm.Value{}, fmt.Errorf("query: internal: aggregate %s not pre-accumulated", call.Name)
		}
		if st.groupSet {
			return evalAggregate(st, call)
		}
		if call.Star {
			return adm.Value{}, fmt.Errorf("query: %s(*) outside GROUP BY", call.Name)
		}
		arg, err := eval(st, env, call.Args[0])
		if err != nil {
			return adm.Value{}, err
		}
		if arg.Kind() != adm.KindArray {
			return adm.Null(), nil
		}
		return aggregateOver(call.Name, arg.ArrayVal())
	}

	// Namespaced (library) call — the Java UDF escape hatch.
	if call.Ns != "" {
		fn, ok := st.ctx.Catalog.Native(call.Ns, call.Name)
		if !ok {
			return adm.Value{}, fmt.Errorf("query: unknown library function %s#%s", call.Ns, call.Name)
		}
		args, err := evalArgs(st, env, call.Args)
		if err != nil {
			return adm.Value{}, err
		}
		return fn(args)
	}

	if fn, ok := LookupBuiltin(call.Name); ok {
		args, err := evalArgs(st, env, call.Args)
		if err != nil {
			return adm.Value{}, err
		}
		return fn(args)
	}

	// Catalog UDF (SQL++ or native).
	if st.ctx.Catalog != nil {
		if udf, ok := st.ctx.Catalog.Function(call.Name); ok {
			args, err := evalArgs(st, env, call.Args)
			if err != nil {
				return adm.Value{}, err
			}
			return CallFunction(st, udf, args)
		}
	}
	return adm.Value{}, fmt.Errorf("%w: %q", ErrUnknownFunction, call.Name)
}

func evalArgs(st evalState, env *Env, exprs []sqlpp.Expr) ([]adm.Value, error) {
	args := make([]adm.Value, len(exprs))
	for i, a := range exprs {
		v, err := eval(st, env, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

// Call invokes a catalog function with already-evaluated arguments in a
// fresh context (the public-API entry point).
func Call(cat Catalog, fn *Function, args []adm.Value) (adm.Value, error) {
	return CallFunction(evalState{ctx: NewContext(cat)}, fn, args)
}

// CallFunction invokes a catalog function with already-evaluated
// arguments. SQL++ bodies evaluate in a fresh environment containing
// only the parameters (UDFs close over nothing).
func CallFunction(st evalState, fn *Function, args []adm.Value) (adm.Value, error) {
	if fn.Native != nil {
		return fn.Native(args)
	}
	if len(args) != len(fn.Params) {
		return adm.Value{}, fmt.Errorf("query: function %s expects %d args, got %d",
			fn.Name, len(fn.Params), len(args))
	}
	st2, err := st.deeper()
	if err != nil {
		return adm.Value{}, err
	}
	var env *Env
	for i, p := range fn.Params {
		env = Bind(env, p, args[i])
	}
	return eval(st2.noGroup(), env, fn.Body)
}

func evalUnary(st evalState, env *Env, n *sqlpp.Unary) (adm.Value, error) {
	v, err := eval(st, env, n.X)
	if err != nil {
		return adm.Value{}, err
	}
	switch n.Op {
	case "NOT":
		if v.Kind() != adm.KindBoolean {
			return adm.Null(), nil
		}
		return adm.Bool(!v.BoolVal()), nil
	case "-":
		switch v.Kind() {
		case adm.KindInt64:
			return adm.Int(-v.IntVal()), nil
		case adm.KindDouble:
			return adm.Double(-v.DoubleVal()), nil
		}
		return adm.Null(), nil
	}
	return adm.Value{}, fmt.Errorf("query: unknown unary op %q", n.Op)
}

func evalBinary(st evalState, env *Env, n *sqlpp.Binary) (adm.Value, error) {
	// Short-circuit logical operators.
	switch n.Op {
	case "AND":
		l, err := eval(st, env, n.L)
		if err != nil {
			return adm.Value{}, err
		}
		if !Truthy(l) {
			return adm.Bool(false), nil
		}
		r, err := eval(st, env, n.R)
		if err != nil {
			return adm.Value{}, err
		}
		return adm.Bool(Truthy(r)), nil
	case "OR":
		l, err := eval(st, env, n.L)
		if err != nil {
			return adm.Value{}, err
		}
		if Truthy(l) {
			return adm.Bool(true), nil
		}
		r, err := eval(st, env, n.R)
		if err != nil {
			return adm.Value{}, err
		}
		return adm.Bool(Truthy(r)), nil
	}

	l, err := eval(st, env, n.L)
	if err != nil {
		return adm.Value{}, err
	}
	r, err := eval(st, env, n.R)
	if err != nil {
		return adm.Value{}, err
	}
	switch n.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		return compareValues(n.Op, l, r), nil
	case "+", "-", "*", "/", "%":
		return arith(n.Op, l, r)
	}
	return adm.Value{}, fmt.Errorf("query: unknown binary op %q", n.Op)
}

// Truthy implements filter semantics: only boolean TRUE passes (the
// simplified two-valued logic this engine uses; unknowns are falsy).
func Truthy(v adm.Value) bool {
	return v.Kind() == adm.KindBoolean && v.BoolVal()
}

// compareValues implements comparison with numeric promotion. Unknown
// operands or cross-kind comparisons yield NULL (falsy).
func compareValues(op string, l, r adm.Value) adm.Value {
	if l.IsUnknown() || r.IsUnknown() {
		return adm.Null()
	}
	sameFamily := l.Kind() == r.Kind() ||
		(l.Kind().IsNumeric() && r.Kind().IsNumeric())
	if !sameFamily {
		if op == "!=" {
			return adm.Bool(true)
		}
		if op == "=" {
			return adm.Bool(false)
		}
		return adm.Null()
	}
	c := adm.Compare(l, r)
	switch op {
	case "=":
		return adm.Bool(c == 0)
	case "!=":
		return adm.Bool(c != 0)
	case "<":
		return adm.Bool(c < 0)
	case "<=":
		return adm.Bool(c <= 0)
	case ">":
		return adm.Bool(c > 0)
	default:
		return adm.Bool(c >= 0)
	}
}

func arith(op string, l, r adm.Value) (adm.Value, error) {
	// datetime + duration (both operand orders), the Q8 pattern.
	if op == "+" {
		if l.Kind() == adm.KindDateTime && r.Kind() == adm.KindDuration {
			return adm.AddDuration(l, r), nil
		}
		if l.Kind() == adm.KindDuration && r.Kind() == adm.KindDateTime {
			return adm.AddDuration(r, l), nil
		}
	}
	if op == "-" && l.Kind() == adm.KindDateTime && r.Kind() == adm.KindDuration {
		months, millis := r.DurationVal()
		return adm.AddDuration(l, adm.Duration(-months, -millis)), nil
	}
	if l.IsUnknown() || r.IsUnknown() {
		return adm.Null(), nil
	}
	if l.Kind() == adm.KindString && r.Kind() == adm.KindString && op == "+" {
		return adm.String(l.StringVal() + r.StringVal()), nil
	}
	if !l.Kind().IsNumeric() || !r.Kind().IsNumeric() {
		return adm.Null(), nil
	}
	if l.Kind() == adm.KindInt64 && r.Kind() == adm.KindInt64 && op != "/" {
		a, b := l.IntVal(), r.IntVal()
		switch op {
		case "+":
			return adm.Int(a + b), nil
		case "-":
			return adm.Int(a - b), nil
		case "*":
			return adm.Int(a * b), nil
		case "%":
			if b == 0 {
				return adm.Null(), nil
			}
			return adm.Int(a % b), nil
		}
	}
	a, _ := l.AsDouble()
	b, _ := r.AsDouble()
	switch op {
	case "+":
		return adm.Double(a + b), nil
	case "-":
		return adm.Double(a - b), nil
	case "*":
		return adm.Double(a * b), nil
	case "%":
		return adm.Double(mod(a, b)), nil
	default: // "/"
		if b == 0 {
			return adm.Null(), nil
		}
		return adm.Double(a / b), nil
	}
}

func mod(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a - b*float64(int64(a/b))
}

func evalCase(st evalState, env *Env, n *sqlpp.CaseExpr) (adm.Value, error) {
	if n.Operand != nil {
		op, err := eval(st, env, n.Operand)
		if err != nil {
			return adm.Value{}, err
		}
		for _, w := range n.Whens {
			wv, err := eval(st, env, w.When)
			if err != nil {
				return adm.Value{}, err
			}
			if adm.Equal(op, wv) {
				return eval(st, env, w.Then)
			}
		}
	} else {
		for _, w := range n.Whens {
			wv, err := eval(st, env, w.When)
			if err != nil {
				return adm.Value{}, err
			}
			if Truthy(wv) {
				return eval(st, env, w.Then)
			}
		}
	}
	if n.Else != nil {
		return eval(st, env, n.Else)
	}
	return adm.Null(), nil
}

func evalExists(st evalState, env *Env, n *sqlpp.Exists) (adm.Value, error) {
	if st.prepared != nil {
		if found, ok, err := st.prepared.evalCompiledExists(st, env, n.Sub); ok || err != nil {
			if err != nil {
				return adm.Value{}, err
			}
			return adm.Bool(found), nil
		}
	}
	v, err := executeSelect(st.noGroup(), env, n.Sub)
	if err != nil {
		return adm.Value{}, err
	}
	return adm.Bool(len(v.ArrayVal()) > 0), nil
}

func evalIn(st evalState, env *Env, n *sqlpp.In) (adm.Value, error) {
	x, err := eval(st, env, n.X)
	if err != nil {
		return adm.Value{}, err
	}
	coll, err := eval(st, env, n.Coll)
	if err != nil {
		return adm.Value{}, err
	}
	if coll.Kind() != adm.KindArray {
		return adm.Null(), nil
	}
	found := false
	for _, e := range coll.ArrayVal() {
		if adm.Equal(x, e) {
			found = true
			break
		}
	}
	if n.Not {
		found = !found
	}
	return adm.Bool(found), nil
}
