package query

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// benchCatalog builds a catalog with a SafetyRatings-shaped reference
// dataset of n rows.
func benchCatalog(b *testing.B, n int) (*testCatalog, *lsm.Dataset) {
	b.Helper()
	cat := newTestCatalog()
	ds, err := lsm.NewDataset("SafetyRatings", nil, "country_code", 4, lsm.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := adm.ObjectFromPairs(
			"country_code", adm.String(fmt.Sprintf("C%06d", i)),
			"safety_rating", adm.String(fmt.Sprintf("%d", i%5)),
		)
		if err := ds.Upsert(adm.ObjectValue(rec)); err != nil {
			b.Fatal(err)
		}
	}
	cat.datasets["SafetyRatings"] = ds
	return cat, ds
}

const q1DDL = `CREATE FUNCTION q1(t) {
	LET safety_rating = (SELECT VALUE s.safety_rating
		FROM SafetyRatings s WHERE t.country = s.country_code)
	SELECT t.*, safety_rating
};`

func benchPlan(b *testing.B, cat *testCatalog) *EnrichPlan {
	b.Helper()
	stmts, err := parseFunc(q1DDL)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := CompileEnrich(stmts.Name, stmts.Params, stmts.Body, cat, PlanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkEnrichPrepare measures the per-batch build phase (reference
// scan + hash-table build) at 50k reference rows — the cost the paper's
// batch size amortizes.
func BenchmarkEnrichPrepare(b *testing.B) {
	cat, _ := benchCatalog(b, 50_000)
	plan := benchPlan(b, cat)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Prepare(cat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnrichEvalRecord measures the per-record probe phase against
// prepared state.
func BenchmarkEnrichEvalRecord(b *testing.B) {
	cat, _ := benchCatalog(b, 50_000)
	plan := benchPlan(b, cat)
	pe, err := plan.Prepare(cat)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	tweets := make([]adm.Value, 256)
	for i := range tweets {
		tweets[i] = adm.ObjectValue(adm.ObjectFromPairs(
			"id", adm.Int(int64(i)),
			"country", adm.String(fmt.Sprintf("C%06d", r.Intn(50_000))),
		))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pe.EvalRecord(tweets[i%len(tweets)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenericCallVsCompiled contrasts the generic per-record UDF
// call (which rescans the dataset: the paper's Model 1 shape) with the
// compiled probe, at a deliberately small reference size so the
// benchmark terminates quickly.
func BenchmarkGenericCallPerRecord(b *testing.B) {
	cat, _ := benchCatalog(b, 2_000)
	fn, err := parseFunc(q1DDL)
	if err != nil {
		b.Fatal(err)
	}
	cat.functions["q1"] = &Function{Name: fn.Name, Params: fn.Params, Body: fn.Body}
	tweet := adm.ObjectValue(adm.ObjectFromPairs(
		"id", adm.Int(1), "country", adm.String("C000042")))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Call(cat, cat.functions["q1"], []adm.Value{tweet}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileEnrich measures UDF compilation (what predeployment
// caches).
func BenchmarkCompileEnrich(b *testing.B) {
	cat, _ := benchCatalog(b, 100)
	fn, err := parseFunc(q1DDL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileEnrich(fn.Name, fn.Params, fn.Body, cat, PlanOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// parseFunc parses one CREATE FUNCTION for benchmarks.
func parseFunc(src string) (*Function, error) {
	stmts, err := sqlpp.Parse(src)
	if err != nil {
		return nil, err
	}
	cf := stmts[0].(*sqlpp.CreateFunction)
	return &Function{Name: cf.Name, Params: cf.Params, Body: cf.Body}, nil
}
