package query

import (
	"fmt"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// RowCursor is the pull-based (Volcano) face of a SELECT: each Next
// call produces one result row, drawing records from the underlying
// dataset scan cursors on demand. For pipeline-able query blocks —
// scan → filter → UDF-apply → project → limit, i.e. no GROUP BY,
// aggregates, ORDER BY, or DISTINCT — nothing is materialized: a
// consumer that stops after k rows touches O(k) records and allocates
// O(k), independent of dataset size. Blocking constructs fall back to
// the eager executor and the cursor streams its buffered result.
type RowCursor struct {
	st  evalState
	sel *sqlpp.SelectExpr

	// Streaming pipeline (nil when running from the eager buffer).
	tuples tupleCursor

	// Eager fallback buffer.
	buf []adm.Value
	pos int

	limit int64 // rows still to emit; -1 = unlimited
	done  bool
}

// ExecuteSelectCursor prepares a pull cursor for a query block. Leading
// LETs and the LIMIT expression are evaluated eagerly (they are bound
// once per query); everything downstream is pulled lazily.
func ExecuteSelectCursor(ctx *Context, env *Env, sel *sqlpp.SelectExpr) (*RowCursor, error) {
	st := evalState{ctx: ctx}
	rc := &RowCursor{st: st, sel: sel, limit: -1}

	if !streamable(sel) {
		v, err := executeSelect(st, env, sel)
		if err != nil {
			return nil, err
		}
		rc.buf = v.ArrayVal()
		return rc, nil
	}

	st, err := st.deeper()
	if err != nil {
		return nil, err
	}
	rc.st = st
	for _, l := range sel.Lets {
		v, err := eval(st, env, l.Expr)
		if err != nil {
			return nil, err
		}
		env = Bind(env, l.Name, v)
	}
	if sel.Limit != nil {
		lv, err := eval(st, nil, sel.Limit)
		if err != nil {
			return nil, err
		}
		n, ok := lv.AsInt()
		if !ok || n < 0 {
			return nil, fmt.Errorf("query: LIMIT must be a non-negative integer")
		}
		rc.limit = n
	}

	// Pin the snapshots of every dataset named in FROM position now,
	// before returning the cursor: the caller's consistency contract is
	// "the data as of the Query call", not "as of the first Next".
	// (Datasets touched only inside subqueries or UDFs pin on first
	// access, per the Context rule.)
	scope := env
	for _, fc := range sel.From {
		if id, isIdent := fc.Source.(*sqlpp.Ident); isIdent {
			if _, bound := scope.Lookup(id.Name); !bound && ctx.Catalog != nil {
				if _, isDS := ctx.Catalog.Dataset(id.Name); isDS {
					if _, err := ctx.Pin(id.Name); err != nil {
						return nil, err
					}
				}
			}
		}
		// Later FROM clauses may reference this alias; approximate the
		// scope by binding it to MISSING (only presence matters here).
		scope = Bind(scope, fc.Alias, adm.Missing())
	}

	// Build the tuple pipeline: FROM fan-out (streaming nested loops),
	// per-tuple LETs, then the WHERE filter.
	var cur tupleCursor = &singleCursor{env: env}
	for _, fc := range sel.From {
		cur = &fromCursor{st: st, outer: cur, src: fc.Source, alias: fc.Alias}
	}
	if len(sel.FromLets) > 0 {
		cur = &letCursor{st: st, inner: cur, lets: sel.FromLets}
	}
	if sel.Where != nil {
		cur = &filterCursor{st: st, inner: cur, pred: sel.Where}
	}
	rc.tuples = cur
	return rc, nil
}

// streamable reports whether the block pipelines row by row. Blocking
// constructs (grouping, aggregation, ordering, dedup) need the whole
// input before the first output row, so they take the eager path.
func streamable(sel *sqlpp.SelectExpr) bool {
	return len(sel.GroupBy) == 0 && len(sel.OrderBy) == 0 &&
		!sel.Distinct && !selectHasAggregate(sel)
}

// Next returns the next result row. After ok=false (exhaustion or
// error) the cursor stays exhausted.
func (rc *RowCursor) Next() (adm.Value, bool, error) {
	if rc.done || rc.limit == 0 {
		rc.done = true
		return adm.Value{}, false, nil
	}
	if rc.tuples == nil {
		if rc.pos >= len(rc.buf) {
			rc.done = true
			return adm.Value{}, false, nil
		}
		v := rc.buf[rc.pos]
		rc.pos++
		return v, true, nil
	}
	tu, ok, err := rc.tuples.next()
	if err != nil || !ok {
		rc.done = true
		return adm.Value{}, false, err
	}
	v, err := projectRow(rc.st.noGroup(), tu, rc.sel)
	if err != nil {
		rc.done = true
		return adm.Value{}, false, err
	}
	if rc.limit > 0 {
		rc.limit--
	}
	return v, true, nil
}

// Close releases the cursor. Scans hold no locks — snapshots are
// dropped with the cursor — so Close only marks the cursor exhausted;
// it exists so callers can abandon a stream at any point.
func (rc *RowCursor) Close() {
	rc.done = true
	rc.tuples = nil
	rc.buf = nil
}

// --- tuple operators ---

// tupleCursor is the operator contract: each next call yields one
// binding environment (a row of the FROM product).
type tupleCursor interface {
	next() (*Env, bool, error)
}

// singleCursor yields the base environment exactly once — the seed of
// the FROM product (and the whole product for FROM-less selects).
type singleCursor struct {
	env  *Env
	used bool
}

func (s *singleCursor) next() (*Env, bool, error) {
	if s.used {
		return nil, false, nil
	}
	s.used = true
	return s.env, true, nil
}

// fromCursor streams one FROM clause: for every outer tuple it opens a
// collection cursor over the source and yields one extended tuple per
// record. Dataset sources stream straight from the LSM scan cursor.
type fromCursor struct {
	st    evalState
	outer tupleCursor
	src   sqlpp.Expr
	alias string

	cur    collCursor
	curEnv *Env
}

func (f *fromCursor) next() (*Env, bool, error) {
	for {
		if f.cur == nil {
			oe, ok, err := f.outer.next()
			if err != nil || !ok {
				return nil, false, err
			}
			cc, err := openFromSource(f.st, oe, f.src)
			if err != nil {
				return nil, false, err
			}
			f.cur = cc
			f.curEnv = oe
		}
		if rec, ok := f.cur.next(); ok {
			return Bind(f.curEnv, f.alias, rec), true, nil
		}
		f.cur = nil
	}
}

// letCursor binds FROM-position LETs on each tuple as it flows past.
type letCursor struct {
	st    evalState
	inner tupleCursor
	lets  []sqlpp.LetBinding
}

func (l *letCursor) next() (*Env, bool, error) {
	tu, ok, err := l.inner.next()
	if err != nil || !ok {
		return nil, false, err
	}
	for _, b := range l.lets {
		v, err := eval(l.st, tu, b.Expr)
		if err != nil {
			return nil, false, err
		}
		tu = Bind(tu, b.Name, v)
	}
	return tu, true, nil
}

// filterCursor drops tuples whose predicate is not TRUE.
type filterCursor struct {
	st    evalState
	inner tupleCursor
	pred  sqlpp.Expr
}

func (f *filterCursor) next() (*Env, bool, error) {
	for {
		tu, ok, err := f.inner.next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := eval(f.st, tu, f.pred)
		if err != nil {
			return nil, false, err
		}
		if Truthy(v) {
			return tu, true, nil
		}
	}
}

// --- collection cursors (FROM sources) ---

// collCursor streams the records of one FROM source instance.
type collCursor interface {
	next() (adm.Value, bool)
}

type sliceCursor struct {
	elems []adm.Value
	pos   int
}

func (s *sliceCursor) next() (adm.Value, bool) {
	if s.pos >= len(s.elems) {
		return adm.Value{}, false
	}
	v := s.elems[s.pos]
	s.pos++
	return v, true
}

type singleValueCursor struct {
	v    adm.Value
	used bool
}

func (s *singleValueCursor) next() (adm.Value, bool) {
	if s.used {
		return adm.Value{}, false
	}
	s.used = true
	return s.v, true
}

// datasetCursor adapts an LSM scan cursor (which walks the pinned
// snapshots' memtable trees and sorted runs in place) to a collection
// cursor.
type datasetCursor struct {
	sc *lsm.ScanCursor
}

func (d *datasetCursor) next() (adm.Value, bool) {
	_, rec, ok := d.sc.Next()
	return rec, ok
}

// openFromSource resolves one FROM source into a streaming cursor: an
// in-scope binding, a dataset scan over the pinned snapshots, or any
// collection-valued expression. It mirrors fromCollection but never
// copies a dataset into a slice.
func openFromSource(st evalState, env *Env, src sqlpp.Expr) (collCursor, error) {
	if id, ok := src.(*sqlpp.Ident); ok {
		if v, bound := env.Lookup(id.Name); bound {
			return collectionCursor(v)
		}
		if st.ctx.Catalog != nil {
			if _, isDS := st.ctx.Catalog.Dataset(id.Name); isDS {
				snaps, err := st.ctx.Pin(id.Name)
				if err != nil {
					return nil, err
				}
				return &datasetCursor{sc: lsm.NewScanCursor(snaps)}, nil
			}
		}
		return nil, fmt.Errorf("query: FROM source %q is neither a binding nor a dataset", id.Name)
	}
	v, err := eval(st, env, src)
	if err != nil {
		return nil, err
	}
	return collectionCursor(v)
}

func collectionCursor(v adm.Value) (collCursor, error) {
	switch v.Kind() {
	case adm.KindArray:
		return &sliceCursor{elems: v.ArrayVal()}, nil
	case adm.KindMissing, adm.KindNull:
		return &sliceCursor{}, nil
	default:
		// A single object iterates as a one-element collection, matching
		// SQL++'s forgiving FROM semantics for non-arrays.
		return &singleValueCursor{v: v}, nil
	}
}
