package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// RowCursor is the pull-based (Volcano) face of a SELECT: each Next
// call produces one result row, drawing records from the underlying
// dataset scan cursors on demand. Every query shape streams:
//
//   - scan → filter → project pipelines materialize nothing — a
//     consumer that stops after k rows touches O(k) records;
//   - GROUP BY / aggregates fold tuples into per-group accumulators as
//     they flow past (O(groups) memory, never O(tuples));
//   - ORDER BY + LIMIT k keeps a bounded top-k heap (O(k) memory,
//     O(n log k) time); without LIMIT it degenerates to a full sort;
//   - DISTINCT dedupes projected rows through a hash set as they are
//     emitted.
//
// The plan — including index pushdown and parallel partition scans —
// is chosen by ExecuteSelectCursor (see plan_select.go) and reported
// by Plan. The eager executor (exec.go) remains for expression-position
// subqueries and the enrichment probe path; top-level SELECTs never
// fall back to it.
type RowCursor struct {
	st   evalState
	sel  *sqlpp.SelectExpr
	rows rowSrc
	plan string

	limit int64 // rows still to emit; -1 = unlimited
	dedup *valueDedup
	done  bool
}

// Next returns the next result row. After ok=false (exhaustion or
// error) the cursor stays exhausted; the operator pipeline — including
// any parallel scan workers — is torn down at that point.
func (rc *RowCursor) Next() (adm.Value, bool, error) {
	for {
		if rc.done || rc.limit == 0 {
			rc.Close()
			return adm.Value{}, false, nil
		}
		if err := rc.st.ctx.Err(); err != nil {
			rc.Close()
			return adm.Value{}, false, err
		}
		r, ok, err := rc.rows.next()
		if err != nil || !ok {
			rc.Close()
			return adm.Value{}, false, err
		}
		v, err := projectRow(rc.rowState(r), r.env, rc.sel)
		if err != nil {
			rc.Close()
			return adm.Value{}, false, err
		}
		if rc.dedup != nil && !rc.dedup.add(v) {
			continue
		}
		if rc.limit > 0 {
			rc.limit--
		}
		return v, true, nil
	}
}

func (rc *RowCursor) rowState(r rowT) evalState {
	if r.grouped {
		return rc.st.withAggVals(r.agg)
	}
	return rc.st.noGroup()
}

// Close tears the cursor down: scan workers are stopped and joined, so
// an abandoned stream leaks no goroutines. Idempotent.
func (rc *RowCursor) Close() {
	if rc.done {
		return
	}
	rc.done = true
	if rc.rows != nil {
		rc.rows.close()
	}
}

// Plan describes the operator pipeline this cursor executes, e.g.
// "iscan(Events.by_grp on grp)→filter→project→limit(4)". Tests assert
// planner decisions (index use, parallelism) against it rather than
// inferring them from timing.
func (rc *RowCursor) Plan() string { return rc.plan }

// --- row operators (post-FROM exchange) ---

// rowT is one output row candidate: its binding environment plus, for
// grouped rows, the pre-accumulated aggregate values keyed by the
// aggregate call sites they answer.
type rowT struct {
	env     *Env
	agg     map[*sqlpp.Call]adm.Value
	grouped bool
}

// rowSrc yields row candidates to the projection stage.
type rowSrc interface {
	next() (rowT, bool, error)
	close()
}

// tupleRows adapts the tuple pipeline to the row exchange for
// ungrouped queries.
type tupleRows struct{ inner tupleCursor }

func (t *tupleRows) next() (rowT, bool, error) {
	tu, ok, err := t.inner.next()
	if err != nil || !ok {
		return rowT{}, false, err
	}
	return rowT{env: tu}, true, nil
}

func (t *tupleRows) close() { t.inner.close() }

// --- streaming hash aggregation ---

// aggAcc incrementally folds one aggregate call, replicating
// aggregateOver's semantics (count skips unknowns, sum/avg go NULL on
// a non-numeric, integer-only sums stay integer, avg is always double,
// min/max use adm.Compare).
type aggAcc struct {
	name string // lowercased
	star bool
	arg  sqlpp.Expr

	count   int64
	sum     float64
	allInt  bool
	n       int
	sumNull bool
	best    adm.Value
	has     bool
}

func newAggAcc(call *sqlpp.Call) (*aggAcc, error) {
	name := strings.ToLower(call.Name)
	if call.Star {
		if name != "count" {
			return nil, fmt.Errorf("query: %s(*) is not a valid aggregate", call.Name)
		}
		return &aggAcc{name: name, star: true}, nil
	}
	if len(call.Args) != 1 {
		return nil, fmt.Errorf("query: aggregate %s expects 1 argument", call.Name)
	}
	return &aggAcc{name: name, allInt: true, arg: call.Args[0]}, nil
}

func (a *aggAcc) add(st evalState, tu *Env) error {
	if a.star {
		a.count++
		return nil
	}
	v, err := eval(st, tu, a.arg)
	if err != nil {
		return err
	}
	if v.IsUnknown() {
		return nil
	}
	switch a.name {
	case "count":
		a.count++
	case "sum", "avg":
		if a.sumNull {
			return nil
		}
		f, ok := v.AsDouble()
		if !ok {
			a.sumNull = true
			return nil
		}
		if v.Kind() != adm.KindInt64 {
			a.allInt = false
		}
		a.sum += f
		a.n++
	case "min", "max":
		if !a.has {
			a.best, a.has = v, true
			return nil
		}
		c := adm.Compare(v, a.best)
		if (a.name == "min" && c < 0) || (a.name == "max" && c > 0) {
			a.best = v
		}
	}
	return nil
}

func (a *aggAcc) final() (adm.Value, error) {
	switch a.name {
	case "count":
		return adm.Int(a.count), nil
	case "sum":
		if a.sumNull || a.n == 0 {
			return adm.Null(), nil
		}
		if a.allInt {
			return adm.Int(int64(a.sum)), nil
		}
		return adm.Double(a.sum), nil
	case "avg":
		if a.sumNull || a.n == 0 {
			return adm.Null(), nil
		}
		return adm.Double(a.sum / float64(a.n)), nil
	case "min", "max":
		if !a.has {
			return adm.Null(), nil
		}
		return a.best, nil
	}
	return adm.Value{}, fmt.Errorf("query: unknown aggregate %q", a.name)
}

type aggGroup struct {
	rep  *Env
	kv   []adm.Value
	accs []*aggAcc
}

// aggRows is the streaming hash aggregate: tuples fold into per-group
// accumulators as they arrive (first-seen group order, matching the
// eager executor), and only the group table — representative env, key
// values, accumulators — is retained. Raw tuples are never buffered.
type aggRows struct {
	st    evalState
	inner tupleCursor
	keys  []sqlpp.GroupKey
	calls []*sqlpp.Call
	// copyRep is set when the scan leaf recycles one binding box per
	// record (env-reuse mode): the representative tuple of each new
	// group must then be copied out of the box before it is retained.
	copyRep bool

	built bool
	out   []rowT
	pos   int
}

func (a *aggRows) next() (rowT, bool, error) {
	if !a.built {
		a.built = true
		if err := a.build(); err != nil {
			return rowT{}, false, err
		}
	}
	if a.pos >= len(a.out) {
		return rowT{}, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}

func (a *aggRows) close() { a.inner.close() }

func (a *aggRows) build() error {
	var groups []*aggGroup
	hidx := make(map[uint64][]int)
	kv := make([]adm.Value, len(a.keys))
	inner := a.st.noGroup() // aggregate args evaluate outside the group context
	for {
		if err := a.st.ctx.Err(); err != nil {
			return err
		}
		tu, ok, err := a.inner.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		var g *aggGroup
		if len(a.keys) == 0 {
			if len(groups) == 0 {
				ng, err := a.newGroup(tu, nil)
				if err != nil {
					return err
				}
				groups = append(groups, ng)
			}
			g = groups[0]
		} else {
			for i, k := range a.keys {
				v, err := eval(a.st, tu, k.Expr)
				if err != nil {
					return err
				}
				kv[i] = v
			}
			h := adm.Hash(adm.Array(kv))
			found := -1
			for _, gi := range hidx[h] {
				if sameKeys(groups[gi].kv, kv) {
					found = gi
					break
				}
			}
			if found < 0 {
				ng, err := a.newGroup(tu, kv)
				if err != nil {
					return err
				}
				groups = append(groups, ng)
				found = len(groups) - 1
				hidx[h] = append(hidx[h], found)
			}
			g = groups[found]
		}
		for _, acc := range g.accs {
			if err := acc.add(inner, tu); err != nil {
				return err
			}
		}
	}
	a.inner.close()
	// An aggregate query without GROUP BY has exactly one group, even
	// over empty input (COUNT(*) of nothing is 0, not no-rows).
	if len(a.keys) == 0 && len(groups) == 0 {
		ng, err := a.newGroup(nil, nil)
		if err != nil {
			return err
		}
		groups = append(groups, ng)
	}
	a.out = make([]rowT, 0, len(groups))
	for _, g := range groups {
		vals := make(map[*sqlpp.Call]adm.Value, len(a.calls))
		for i, call := range a.calls {
			v, err := g.accs[i].final()
			if err != nil {
				return err
			}
			vals[call] = v
		}
		a.out = append(a.out, rowT{env: g.rep, agg: vals, grouped: true})
	}
	return nil
}

func (a *aggRows) newGroup(tu *Env, kv []adm.Value) (*aggGroup, error) {
	if a.copyRep && tu != nil {
		// tu is the scan leaf's reused box (a single Env node over the
		// stable base chain); snapshot it before retaining.
		cp := *tu
		tu = &cp
	}
	g := &aggGroup{rep: tu}
	if kv != nil {
		g.kv = append([]adm.Value(nil), kv...)
		for i, k := range a.keys {
			if k.Alias != "" {
				g.rep = Bind(g.rep, k.Alias, g.kv[i])
			}
		}
	}
	g.accs = make([]*aggAcc, len(a.calls))
	for i, call := range a.calls {
		acc, err := newAggAcc(call)
		if err != nil {
			return nil, err
		}
		g.accs[i] = acc
	}
	return g, nil
}

// collectSelectAggs gathers the aggregate call sites a grouped query
// evaluates — SELECT list/value and ORDER BY keys (the clauses that run
// under the group context). Calls nested inside another aggregate's
// argument are excluded: they evaluate as scalar collection functions
// during accumulation, exactly as in the eager executor.
func collectSelectAggs(sel *sqlpp.SelectExpr) []*sqlpp.Call {
	var out []*sqlpp.Call
	collectAggCalls(sel.SelectValue, &out)
	for _, p := range sel.Projections {
		collectAggCalls(p.Expr, &out)
	}
	for _, ob := range sel.OrderBy {
		collectAggCalls(ob.Expr, &out)
	}
	return out
}

func collectAggCalls(e sqlpp.Expr, out *[]*sqlpp.Call) {
	switch n := e.(type) {
	case *sqlpp.Call:
		if n.Ns == "" && IsAggregate(strings.ToLower(n.Name)) {
			*out = append(*out, n)
			return
		}
		for _, a := range n.Args {
			collectAggCalls(a, out)
		}
	case *sqlpp.FieldAccess:
		collectAggCalls(n.Base, out)
	case *sqlpp.IndexAccess:
		collectAggCalls(n.Base, out)
		collectAggCalls(n.Index, out)
	case *sqlpp.Unary:
		collectAggCalls(n.X, out)
	case *sqlpp.Binary:
		collectAggCalls(n.L, out)
		collectAggCalls(n.R, out)
	case *sqlpp.CaseExpr:
		collectAggCalls(n.Operand, out)
		for _, w := range n.Whens {
			collectAggCalls(w.When, out)
			collectAggCalls(w.Then, out)
		}
		collectAggCalls(n.Else, out)
	case *sqlpp.In:
		collectAggCalls(n.X, out)
		collectAggCalls(n.Coll, out)
	case *sqlpp.ArrayCtor:
		for _, el := range n.Elems {
			collectAggCalls(el, out)
		}
	case *sqlpp.ObjectCtor:
		for _, f := range n.Fields {
			collectAggCalls(f.Val, out)
		}
	}
}

// --- bounded top-k ordering ---

type topkEntry struct {
	row    rowT
	keys   []adm.Value
	seq    int
	envBox Env // copyEnv mode: stable home for a reused scan env
}

// topkRows implements ORDER BY [+ LIMIT k] as a bounded selection: a
// size-k max-heap keeps the k best rows seen (worst at the root), so a
// LIMIT-k sort costs O(n log k) time and O(k) memory. With k < 0 (no
// LIMIT, or DISTINCT under the limit) every row is retained and sorted
// — the graceful degeneration to a full sort. Ties preserve arrival
// order, matching the eager executor's stable sort.
type topkRows struct {
	st      evalState
	inner   rowSrc
	orderBy []sqlpp.OrderKey
	k       int64 // -1 = retain everything
	copyEnv bool  // input env is a reused box; copy on acceptance

	built   bool
	heap    []*topkEntry
	out     []*topkEntry
	pos     int
	scratch []adm.Value
	seq     int
}

func (t *topkRows) next() (rowT, bool, error) {
	if !t.built {
		t.built = true
		if err := t.build(); err != nil {
			return rowT{}, false, err
		}
	}
	if t.pos >= len(t.out) {
		return rowT{}, false, nil
	}
	r := t.out[t.pos].row
	t.pos++
	return r, true, nil
}

func (t *topkRows) close() { t.inner.close() }

func (t *topkRows) build() error {
	t.scratch = make([]adm.Value, len(t.orderBy))
	for {
		if err := t.st.ctx.Err(); err != nil {
			return err
		}
		r, ok, err := t.inner.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		st := t.st.noGroup()
		if r.grouped {
			st = t.st.withAggVals(r.agg)
		}
		for j, ob := range t.orderBy {
			v, err := eval(st, r.env, ob.Expr)
			if err != nil {
				return err
			}
			t.scratch[j] = v
		}
		t.offer(r)
	}
	t.inner.close()
	sort.Slice(t.heap, func(i, j int) bool { return t.before(t.heap[i], t.heap[j]) })
	t.out = t.heap
	return nil
}

// offer considers one row whose order keys sit in t.scratch. The
// bounded path is allocation-free once the heap is full: a winning
// candidate swaps its key slice with the evicted root's and overwrites
// it in place.
func (t *topkRows) offer(r rowT) {
	seq := t.seq
	t.seq++
	if t.k == 0 {
		return
	}
	if t.k < 0 || int64(len(t.heap)) < t.k {
		e := &topkEntry{keys: append([]adm.Value(nil), t.scratch...), seq: seq}
		t.take(e, r)
		t.heap = append(t.heap, e)
		t.siftUp(len(t.heap) - 1)
		return
	}
	root := t.heap[0]
	// The candidate arrived after everything in the heap, so on equal
	// keys it is the worse row (stability): strict improvement only.
	if t.compareKeys(t.scratch, root.keys) >= 0 {
		return
	}
	root.keys, t.scratch = t.scratch, root.keys
	root.seq = seq
	t.take(root, r)
	t.siftDown(0)
}

func (t *topkRows) take(e *topkEntry, r rowT) {
	e.row = r
	if t.copyEnv && r.env != nil {
		e.envBox = *r.env
		e.row.env = &e.envBox
	}
}

func (t *topkRows) compareKeys(a, b []adm.Value) int {
	for j, ob := range t.orderBy {
		c := adm.Compare(a[j], b[j])
		if c != 0 {
			if ob.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// before is the output order: keys ascending per the ORDER BY spec,
// ties by arrival.
func (t *topkRows) before(a, b *topkEntry) bool {
	if c := t.compareKeys(a.keys, b.keys); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

// worse is the heap order (max-heap on badness).
func (t *topkRows) worse(a, b *topkEntry) bool {
	if c := t.compareKeys(a.keys, b.keys); c != 0 {
		return c > 0
	}
	return a.seq > b.seq
}

func (t *topkRows) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[p]) {
			return
		}
		t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
		i = p
	}
}

func (t *topkRows) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(t.heap) && t.worse(t.heap[l], t.heap[w]) {
			w = l
		}
		if r < len(t.heap) && t.worse(t.heap[r], t.heap[w]) {
			w = r
		}
		if w == i {
			return
		}
		t.heap[i], t.heap[w] = t.heap[w], t.heap[i]
		i = w
	}
}

// --- streaming DISTINCT ---

// valueDedup is the projected-row hash set behind SELECT DISTINCT.
type valueDedup struct{ seen map[uint64][]adm.Value }

func newValueDedup() *valueDedup {
	return &valueDedup{seen: make(map[uint64][]adm.Value)}
}

// add reports whether v is new, recording it if so.
func (d *valueDedup) add(v adm.Value) bool {
	h := adm.Hash(v)
	for _, prev := range d.seen[h] {
		if adm.Equal(prev, v) {
			return false
		}
	}
	d.seen[h] = append(d.seen[h], v)
	return true
}

// --- tuple operators ---

// tupleCursor is the operator contract: each next call yields one
// binding environment (a row of the FROM product). close releases
// whatever the pipeline holds (parallel scan workers in particular)
// and must be idempotent.
type tupleCursor interface {
	next() (*Env, bool, error)
	close()
}

// singleCursor yields the base environment exactly once — the seed of
// the FROM product (and the whole product for FROM-less selects).
type singleCursor struct {
	env  *Env
	used bool
}

func (s *singleCursor) next() (*Env, bool, error) {
	if s.used {
		return nil, false, nil
	}
	s.used = true
	return s.env, true, nil
}

func (s *singleCursor) close() {}

// scanFromCursor is the planned leaf: it binds the first FROM clause's
// alias over a pre-built record stream (serial scan, index range scan,
// or parallel partition scan). In reuse mode it mutates one env box in
// place per record instead of allocating a binding — valid only when
// the planner proved no downstream operator retains the env without
// copying it (the top-k heap copies on acceptance).
type scanFromCursor struct {
	base  *Env
	alias string
	leaf  collCursor
	reuse bool
	box   Env
	init  bool
}

func (s *scanFromCursor) next() (*Env, bool, error) {
	rec, ok, err := s.leaf.next()
	if err != nil || !ok {
		return nil, false, err
	}
	if s.reuse {
		if !s.init {
			s.box = Env{parent: s.base, name: s.alias}
			s.init = true
		}
		s.box.val = rec
		return &s.box, true, nil
	}
	return Bind(s.base, s.alias, rec), true, nil
}

func (s *scanFromCursor) close() { s.leaf.close() }

// fromCursor streams one FROM clause: for every outer tuple it opens a
// collection cursor over the source and yields one extended tuple per
// record. Dataset sources stream straight from the LSM scan cursor.
type fromCursor struct {
	st    evalState
	outer tupleCursor
	src   sqlpp.Expr
	alias string

	cur    collCursor
	curEnv *Env
}

func (f *fromCursor) next() (*Env, bool, error) {
	for {
		if f.cur == nil {
			oe, ok, err := f.outer.next()
			if err != nil || !ok {
				return nil, false, err
			}
			cc, err := openFromSource(f.st, oe, f.src)
			if err != nil {
				return nil, false, err
			}
			f.cur = cc
			f.curEnv = oe
		}
		rec, ok, err := f.cur.next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return Bind(f.curEnv, f.alias, rec), true, nil
		}
		f.cur.close()
		f.cur = nil
	}
}

func (f *fromCursor) close() {
	if f.cur != nil {
		f.cur.close()
		f.cur = nil
	}
	f.outer.close()
}

// letCursor binds FROM-position LETs on each tuple as it flows past.
type letCursor struct {
	st    evalState
	inner tupleCursor
	lets  []sqlpp.LetBinding
}

func (l *letCursor) next() (*Env, bool, error) {
	tu, ok, err := l.inner.next()
	if err != nil || !ok {
		return nil, false, err
	}
	for _, b := range l.lets {
		v, err := eval(l.st, tu, b.Expr)
		if err != nil {
			return nil, false, err
		}
		tu = Bind(tu, b.Name, v)
	}
	return tu, true, nil
}

func (l *letCursor) close() { l.inner.close() }

// filterCursor drops tuples whose predicate is not TRUE. It polls for
// cancellation per candidate so a filter that rejects a long stretch
// still notices a dead context.
type filterCursor struct {
	st    evalState
	inner tupleCursor
	pred  sqlpp.Expr
}

func (f *filterCursor) next() (*Env, bool, error) {
	for {
		if err := f.st.ctx.Err(); err != nil {
			return nil, false, err
		}
		tu, ok, err := f.inner.next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := eval(f.st, tu, f.pred)
		if err != nil {
			return nil, false, err
		}
		if Truthy(v) {
			return tu, true, nil
		}
	}
}

func (f *filterCursor) close() { f.inner.close() }

// --- collection cursors (FROM sources) ---

// collCursor streams the records of one FROM source instance.
type collCursor interface {
	next() (adm.Value, bool, error)
	close()
}

type sliceCursor struct {
	elems []adm.Value
	pos   int
}

func (s *sliceCursor) next() (adm.Value, bool, error) {
	if s.pos >= len(s.elems) {
		return adm.Value{}, false, nil
	}
	v := s.elems[s.pos]
	s.pos++
	return v, true, nil
}

func (s *sliceCursor) close() {}

type singleValueCursor struct {
	v    adm.Value
	used bool
}

func (s *singleValueCursor) next() (adm.Value, bool, error) {
	if s.used {
		return adm.Value{}, false, nil
	}
	s.used = true
	return s.v, true, nil
}

func (s *singleValueCursor) close() {}

// datasetCursor adapts an LSM scan cursor (which walks the pinned
// snapshots' memtable trees and sorted runs in place) to a collection
// cursor.
type datasetCursor struct {
	sc *lsm.ScanCursor
}

func (d *datasetCursor) next() (adm.Value, bool, error) {
	_, rec, ok := d.sc.Next()
	return rec, ok, nil
}

func (d *datasetCursor) close() { d.sc.Close() }

// indexScanColl adapts a secondary-index range scan.
type indexScanColl struct {
	sc *lsm.IndexScanCursor
}

func (c *indexScanColl) next() (adm.Value, bool, error) {
	_, rec, ok := c.sc.Next()
	return rec, ok, nil
}

func (c *indexScanColl) close() {}

// parallelColl adapts a parallel partition scan; close stops and joins
// the workers.
type parallelColl struct {
	pc *lsm.ParallelScanCursor
}

func (c *parallelColl) next() (adm.Value, bool, error) {
	_, rec, ok, err := c.pc.Next()
	return rec, ok, err
}

func (c *parallelColl) close() { c.pc.Close() }

// openFromSource resolves one FROM source into a streaming cursor: an
// in-scope binding, a dataset scan over the pinned snapshots, or any
// collection-valued expression. It mirrors fromCollection but never
// copies a dataset into a slice.
func openFromSource(st evalState, env *Env, src sqlpp.Expr) (collCursor, error) {
	if id, ok := src.(*sqlpp.Ident); ok {
		if v, bound := env.Lookup(id.Name); bound {
			return collectionCursor(v)
		}
		if st.ctx.Catalog != nil {
			if _, isDS := st.ctx.Catalog.Dataset(id.Name); isDS {
				snaps, err := st.ctx.Pin(id.Name)
				if err != nil {
					return nil, err
				}
				return &datasetCursor{sc: lsm.NewScanCursor(snaps)}, nil
			}
		}
		return nil, fmt.Errorf("%w: FROM source %q is neither a binding nor a dataset", ErrUnknownDataset, id.Name)
	}
	v, err := eval(st, env, src)
	if err != nil {
		return nil, err
	}
	return collectionCursor(v)
}

func collectionCursor(v adm.Value) (collCursor, error) {
	switch v.Kind() {
	case adm.KindArray:
		return &sliceCursor{elems: v.ArrayVal()}, nil
	case adm.KindMissing, adm.KindNull:
		return &sliceCursor{}, nil
	default:
		// A single object iterates as a one-element collection, matching
		// SQL++'s forgiving FROM semantics for non-arrays.
		return &singleValueCursor{v: v}, nil
	}
}
