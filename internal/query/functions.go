package query

import (
	"fmt"
	"math"
	"strings"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/spatial"
)

// BuiltinFn is the signature of a builtin scalar function.
type BuiltinFn func(args []adm.Value) (adm.Value, error)

// builtins is the scalar function library covering everything the
// paper's UDFs call. Names are lower-case; lookups are case-insensitive.
var builtins = map[string]BuiltinFn{
	"contains":          fnContains,
	"lower":             fnLower,
	"upper":             fnUpper,
	"length":            fnLength,
	"abs":               fnAbs,
	"sqrt":              fnSqrt,
	"to_string":         fnToString,
	"edit_distance":     fnEditDistance,
	"create_point":      fnCreatePoint,
	"create_circle":     fnCreateCircle,
	"create_rectangle":  fnCreateRectangle,
	"spatial_intersect": fnSpatialIntersect,
	"spatial_distance":  fnSpatialDistance,
	"duration":          fnDuration,
	"datetime":          fnDateTime,
	"get_x":             fnGetX,
	"get_y":             fnGetY,
	"array_length":      fnArrayLength,
}

// LookupBuiltin resolves a builtin by (case-insensitive) name.
func LookupBuiltin(name string) (BuiltinFn, bool) {
	fn, ok := builtins[strings.ToLower(name)]
	return fn, ok
}

// IsAggregate reports whether the (lower-case) call name is an aggregate
// handled by the grouping machinery rather than the scalar library.
func IsAggregate(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

func argErr(name string, want int, got int) error {
	return fmt.Errorf("query: %s expects %d argument(s), got %d", name, want, got)
}

func fnContains(args []adm.Value) (adm.Value, error) {
	if len(args) != 2 {
		return adm.Value{}, argErr("contains", 2, len(args))
	}
	if args[0].Kind() != adm.KindString || args[1].Kind() != adm.KindString {
		return adm.Null(), nil
	}
	return adm.Bool(strings.Contains(args[0].StringVal(), args[1].StringVal())), nil
}

func fnLower(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("lower", 1, len(args))
	}
	if args[0].Kind() != adm.KindString {
		return adm.Null(), nil
	}
	return adm.String(strings.ToLower(args[0].StringVal())), nil
}

func fnUpper(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("upper", 1, len(args))
	}
	if args[0].Kind() != adm.KindString {
		return adm.Null(), nil
	}
	return adm.String(strings.ToUpper(args[0].StringVal())), nil
}

func fnLength(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("length", 1, len(args))
	}
	if args[0].Kind() != adm.KindString {
		return adm.Null(), nil
	}
	return adm.Int(int64(len(args[0].StringVal()))), nil
}

func fnArrayLength(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("array_length", 1, len(args))
	}
	if args[0].Kind() != adm.KindArray {
		return adm.Null(), nil
	}
	return adm.Int(int64(len(args[0].ArrayVal()))), nil
}

func fnAbs(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("abs", 1, len(args))
	}
	switch args[0].Kind() {
	case adm.KindInt64:
		v := args[0].IntVal()
		if v < 0 {
			v = -v
		}
		return adm.Int(v), nil
	case adm.KindDouble:
		return adm.Double(math.Abs(args[0].DoubleVal())), nil
	}
	return adm.Null(), nil
}

func fnSqrt(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("sqrt", 1, len(args))
	}
	f, ok := args[0].AsDouble()
	if !ok {
		return adm.Null(), nil
	}
	return adm.Double(math.Sqrt(f)), nil
}

func fnToString(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("to_string", 1, len(args))
	}
	if args[0].Kind() == adm.KindString {
		return args[0], nil
	}
	return adm.String(args[0].String()), nil
}

// fnEditDistance computes Levenshtein distance with the two-row DP.
func fnEditDistance(args []adm.Value) (adm.Value, error) {
	if len(args) != 2 {
		return adm.Value{}, argErr("edit_distance", 2, len(args))
	}
	if args[0].Kind() != adm.KindString || args[1].Kind() != adm.KindString {
		return adm.Null(), nil
	}
	return adm.Int(int64(EditDistance(args[0].StringVal(), args[1].StringVal()))), nil
}

// EditDistance returns the Levenshtein distance between two strings
// (byte-wise, which matches the ASCII workload).
func EditDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func fnCreatePoint(args []adm.Value) (adm.Value, error) {
	if len(args) != 2 {
		return adm.Value{}, argErr("create_point", 2, len(args))
	}
	x, okx := args[0].AsDouble()
	y, oky := args[1].AsDouble()
	if !okx || !oky {
		return adm.Null(), nil
	}
	return adm.Point(x, y), nil
}

func fnCreateCircle(args []adm.Value) (adm.Value, error) {
	if len(args) != 2 {
		return adm.Value{}, argErr("create_circle", 2, len(args))
	}
	if args[0].Kind() != adm.KindPoint {
		return adm.Null(), nil
	}
	r, ok := args[1].AsDouble()
	if !ok {
		return adm.Null(), nil
	}
	cx, cy := args[0].PointVal()
	return adm.Circle(cx, cy, r), nil
}

func fnCreateRectangle(args []adm.Value) (adm.Value, error) {
	if len(args) != 2 {
		return adm.Value{}, argErr("create_rectangle", 2, len(args))
	}
	if args[0].Kind() != adm.KindPoint || args[1].Kind() != adm.KindPoint {
		return adm.Null(), nil
	}
	x1, y1 := args[0].PointVal()
	x2, y2 := args[1].PointVal()
	return adm.Rectangle(x1, y1, x2, y2), nil
}

// GeometryBounds returns the bounding rectangle of a spatial value.
func GeometryBounds(v adm.Value) (spatial.Rect, bool) {
	switch v.Kind() {
	case adm.KindPoint:
		x, y := v.PointVal()
		return spatial.BoundsPoint(spatial.Point{X: x, Y: y}), true
	case adm.KindRectangle:
		x1, y1, x2, y2 := v.RectVal()
		return spatial.NewRect(x1, y1, x2, y2), true
	case adm.KindCircle:
		cx, cy, r := v.CircleVal()
		return spatial.Circle{Center: spatial.Point{X: cx, Y: cy}, R: r}.Bounds(), true
	}
	return spatial.Rect{}, false
}

// SpatialIntersects is the exact pairwise intersection test across all
// geometry kind combinations.
func SpatialIntersects(a, b adm.Value) (bool, bool) {
	ka, kb := a.Kind(), b.Kind()
	if !ka.IsSpatial() || !kb.IsSpatial() {
		return false, false
	}
	// Normalize so ka <= kb in the order point < rectangle < circle.
	rank := func(k adm.Kind) int {
		switch k {
		case adm.KindPoint:
			return 0
		case adm.KindRectangle:
			return 1
		default:
			return 2
		}
	}
	if rank(ka) > rank(kb) {
		a, b = b, a
		ka, kb = kb, ka
	}
	switch {
	case ka == adm.KindPoint && kb == adm.KindPoint:
		ax, ay := a.PointVal()
		bx, by := b.PointVal()
		return ax == bx && ay == by, true
	case ka == adm.KindPoint && kb == adm.KindRectangle:
		x, y := a.PointVal()
		x1, y1, x2, y2 := b.RectVal()
		return spatial.NewRect(x1, y1, x2, y2).Contains(spatial.Point{X: x, Y: y}), true
	case ka == adm.KindPoint && kb == adm.KindCircle:
		x, y := a.PointVal()
		cx, cy, r := b.CircleVal()
		return spatial.Circle{Center: spatial.Point{X: cx, Y: cy}, R: r}.
			ContainsPoint(spatial.Point{X: x, Y: y}), true
	case ka == adm.KindRectangle && kb == adm.KindRectangle:
		a1, a2, a3, a4 := a.RectVal()
		b1, b2, b3, b4 := b.RectVal()
		return spatial.NewRect(a1, a2, a3, a4).Intersects(spatial.NewRect(b1, b2, b3, b4)), true
	case ka == adm.KindRectangle && kb == adm.KindCircle:
		x1, y1, x2, y2 := a.RectVal()
		cx, cy, r := b.CircleVal()
		return spatial.Circle{Center: spatial.Point{X: cx, Y: cy}, R: r}.
			IntersectsRect(spatial.NewRect(x1, y1, x2, y2)), true
	default: // circle-circle
		a1, a2, ar := a.CircleVal()
		b1, b2, br := b.CircleVal()
		return spatial.Circle{Center: spatial.Point{X: a1, Y: a2}, R: ar}.
			IntersectsCircle(spatial.Circle{Center: spatial.Point{X: b1, Y: b2}, R: br}), true
	}
}

func fnSpatialIntersect(args []adm.Value) (adm.Value, error) {
	if len(args) != 2 {
		return adm.Value{}, argErr("spatial_intersect", 2, len(args))
	}
	ok, valid := SpatialIntersects(args[0], args[1])
	if !valid {
		return adm.Null(), nil
	}
	return adm.Bool(ok), nil
}

func fnSpatialDistance(args []adm.Value) (adm.Value, error) {
	if len(args) != 2 {
		return adm.Value{}, argErr("spatial_distance", 2, len(args))
	}
	if args[0].Kind() != adm.KindPoint || args[1].Kind() != adm.KindPoint {
		return adm.Null(), nil
	}
	ax, ay := args[0].PointVal()
	bx, by := args[1].PointVal()
	return adm.Double(spatial.Dist(spatial.Point{X: ax, Y: ay}, spatial.Point{X: bx, Y: by})), nil
}

func fnDuration(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("duration", 1, len(args))
	}
	if args[0].Kind() != adm.KindString {
		return adm.Null(), nil
	}
	months, millis, ok := adm.ParseISODuration(args[0].StringVal())
	if !ok {
		return adm.Value{}, fmt.Errorf("query: invalid duration literal %q", args[0].StringVal())
	}
	return adm.Duration(months, millis), nil
}

func fnDateTime(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("datetime", 1, len(args))
	}
	if args[0].Kind() != adm.KindString {
		return adm.Null(), nil
	}
	ms, ok := adm.ParseISODateTime(args[0].StringVal())
	if !ok {
		return adm.Value{}, fmt.Errorf("query: invalid datetime literal %q", args[0].StringVal())
	}
	return adm.DateTimeMillis(ms), nil
}

func fnGetX(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("get_x", 1, len(args))
	}
	if args[0].Kind() != adm.KindPoint {
		return adm.Null(), nil
	}
	x, _ := args[0].PointVal()
	return adm.Double(x), nil
}

func fnGetY(args []adm.Value) (adm.Value, error) {
	if len(args) != 1 {
		return adm.Value{}, argErr("get_y", 1, len(args))
	}
	if args[0].Kind() != adm.KindPoint {
		return adm.Null(), nil
	}
	_, y := args[0].PointVal()
	return adm.Double(y), nil
}
