package query

import (
	"github.com/ideadb/idea/internal/sqlpp"
)

// FreeVars returns the unbound variable names referenced by an
// expression, respecting SQL++ scoping (LETs, FROM aliases, and GROUP BY
// aliases bind names for the clauses that follow them). Dataset names in
// FROM position are reported as free too; callers subtract the names the
// catalog can resolve.
func FreeVars(e sqlpp.Expr) map[string]bool {
	out := make(map[string]bool)
	freeVarsExpr(e, nil, out)
	return out
}

func freeVarsExpr(e sqlpp.Expr, bound map[string]bool, out map[string]bool) {
	switch n := e.(type) {
	case nil:
		return
	case *sqlpp.Literal:
	case *sqlpp.Ident:
		if !bound[n.Name] {
			out[n.Name] = true
		}
	case *sqlpp.FieldAccess:
		freeVarsExpr(n.Base, bound, out)
	case *sqlpp.IndexAccess:
		freeVarsExpr(n.Base, bound, out)
		freeVarsExpr(n.Index, bound, out)
	case *sqlpp.Call:
		for _, a := range n.Args {
			freeVarsExpr(a, bound, out)
		}
	case *sqlpp.Unary:
		freeVarsExpr(n.X, bound, out)
	case *sqlpp.Binary:
		freeVarsExpr(n.L, bound, out)
		freeVarsExpr(n.R, bound, out)
	case *sqlpp.CaseExpr:
		freeVarsExpr(n.Operand, bound, out)
		for _, w := range n.Whens {
			freeVarsExpr(w.When, bound, out)
			freeVarsExpr(w.Then, bound, out)
		}
		freeVarsExpr(n.Else, bound, out)
	case *sqlpp.Exists:
		freeVarsSelect(n.Sub, bound, out)
	case *sqlpp.In:
		freeVarsExpr(n.X, bound, out)
		freeVarsExpr(n.Coll, bound, out)
	case *sqlpp.SubqueryExpr:
		freeVarsSelect(n.Sel, bound, out)
	case *sqlpp.ArrayCtor:
		for _, el := range n.Elems {
			freeVarsExpr(el, bound, out)
		}
	case *sqlpp.ObjectCtor:
		for _, f := range n.Fields {
			freeVarsExpr(f.Val, bound, out)
		}
	case *sqlpp.SelectExpr:
		freeVarsSelect(n, bound, out)
	}
}

func freeVarsSelect(sel *sqlpp.SelectExpr, bound map[string]bool, out map[string]bool) {
	local := make(map[string]bool, len(bound)+4)
	for k := range bound {
		local[k] = true
	}
	for _, l := range sel.Lets {
		freeVarsExpr(l.Expr, local, out)
		local[l.Name] = true
	}
	for _, fc := range sel.From {
		freeVarsExpr(fc.Source, local, out)
		local[fc.Alias] = true
	}
	for _, l := range sel.FromLets {
		freeVarsExpr(l.Expr, local, out)
		local[l.Name] = true
	}
	freeVarsExpr(sel.Where, local, out)
	for _, gk := range sel.GroupBy {
		freeVarsExpr(gk.Expr, local, out)
	}
	for _, gk := range sel.GroupBy {
		if gk.Alias != "" {
			local[gk.Alias] = true
		}
	}
	freeVarsExpr(sel.SelectValue, local, out)
	for _, p := range sel.Projections {
		freeVarsExpr(p.Expr, local, out)
	}
	for _, ob := range sel.OrderBy {
		freeVarsExpr(ob.Expr, local, out)
	}
	freeVarsExpr(sel.Limit, local, out)
}

// splitConjuncts flattens an AND chain into its conjuncts.
func splitConjuncts(e sqlpp.Expr) []sqlpp.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlpp.Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlpp.Expr{e}
}
