package query

import (
	"fmt"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// benchStreamCatalog builds the benchmark fixture: dataset R over 4
// partitions with a huge memtable budget (one component per partition,
// so component count never varies with size), primary key id, indexed
// cat with 128 distinct values (so one value selects <=1% of rows),
// and score in [0,97).
func benchStreamCatalog(b *testing.B, n int) *testCatalog {
	b.Helper()
	cat := newTestCatalog()
	ds, err := lsm.NewDataset("R", nil, "id", 4, lsm.Options{MemBudget: 1 << 30, MaxComponents: 64})
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]adm.Value, n)
	for i := range recs {
		recs[i] = obj(
			"id", adm.Int(int64(i)),
			"cat", adm.String(fmt.Sprintf("c%03d", i%128)),
			"score", adm.Int(int64(i%97)),
		)
	}
	if err := ds.UpsertBatch(recs); err != nil {
		b.Fatal(err)
	}
	if err := ds.CreateFieldBTreeIndex("by_cat", "cat"); err != nil {
		b.Fatal(err)
	}
	cat.datasets["R"] = ds
	return cat
}

func benchSel(b *testing.B, q string) *sqlpp.SelectExpr {
	b.Helper()
	e, err := sqlpp.ParseExpr(q)
	if err != nil {
		b.Fatal(err)
	}
	sel, ok := e.(*sqlpp.SelectExpr)
	if !ok {
		b.Fatalf("%q is not a query", q)
	}
	return sel
}

// drainBench pulls a query to exhaustion and returns the row count.
func drainBench(b *testing.B, ctx *Context, sel *sqlpp.SelectExpr) int {
	b.Helper()
	rc, err := ExecuteSelectCursor(ctx, nil, sel)
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := rc.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			return n
		}
		n++
	}
}

// BenchmarkQueryTopK is the bounded top-k acceptance benchmark:
// ORDER BY + LIMIT k holds a k-entry heap and recycles one binding
// box per scanned record, so allocs/op must be identical at 10k and
// 100k records — memory is O(k), never O(n).
func BenchmarkQueryTopK(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			cat := benchStreamCatalog(b, size)
			sel := benchSel(b, `SELECT VALUE r.id FROM R r ORDER BY r.score DESC, r.id LIMIT 10`)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n := drainBench(b, NewContext(cat), sel); n != 10 {
					b.Fatalf("rows = %d", n)
				}
			}
		})
	}
}

// BenchmarkQueryGroupBy measures the streaming hash aggregate: one
// pass, one accumulator set per group, no tuple buffering.
func BenchmarkQueryGroupBy(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			cat := benchStreamCatalog(b, size)
			sel := benchSel(b, `SELECT r.cat AS c, count(*) AS n, sum(r.score) AS s FROM R r GROUP BY r.cat`)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n := drainBench(b, NewContext(cat), sel); n != 128 {
					b.Fatalf("groups = %d", n)
				}
			}
		})
	}
}

// BenchmarkQueryIndexPushdown contrasts the secondary-index range
// probe against the full-scan fallback on the same <=1%-selectivity
// predicate (one cat value out of 128). The pushdown's advantage
// scales with dataset size; TestIndexScanMatchesFullScan asserts the
// plans, this benchmark shows the payoff.
func BenchmarkQueryIndexPushdown(b *testing.B) {
	const size = 100_000
	sel := benchSel(b, `SELECT VALUE r.id FROM R r WHERE r.cat = "c007"`)
	want := (size - 7 + 127) / 128 // i ≡ 7 (mod 128)
	b.Run("indexed", func(b *testing.B) {
		cat := benchStreamCatalog(b, size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n := drainBench(b, NewContext(cat), sel); n != want {
				b.Fatalf("rows = %d, want %d", n, want)
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		cat := benchStreamCatalog(b, size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := NewContext(cat)
			ctx.DisableIndexScan = true
			if n := drainBench(b, ctx, sel); n != want {
				b.Fatalf("rows = %d, want %d", n, want)
			}
		}
	})
}

// BenchmarkQueryParallelScan compares the parallel partition scan
// against the serial scan on a full-drain filtered aggregate: the
// WHERE conjunct is concurrency-safe, so the parallel plan evaluates
// it inside the scan workers while the serial plan filters on the
// consumer side, single-threaded.
func BenchmarkQueryParallelScan(b *testing.B) {
	const size = 100_000
	sel := benchSel(b, `SELECT VALUE count(*) FROM R r WHERE r.score > 90`)
	b.Run("parallel", func(b *testing.B) {
		cat := benchStreamCatalog(b, size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n := drainBench(b, NewContext(cat), sel); n != 1 {
				b.Fatalf("rows = %d", n)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		cat := benchStreamCatalog(b, size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := NewContext(cat)
			ctx.DisableParallelScan = true
			if n := drainBench(b, ctx, sel); n != 1 {
				b.Fatalf("rows = %d", n)
			}
		}
	})
}
