package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// paperCatalog builds small versions of every reference dataset from the
// paper's evaluation section plus all eight enrichment UDFs.
func paperCatalog(t *testing.T) *testCatalog {
	t.Helper()
	r := rand.New(rand.NewSource(2019))
	cat := newTestCatalog()

	countries := []string{"US", "FR", "DE", "BR", "IN", "CN", "JP", "MX", "GB", "IT"}
	religions := []string{"alpha", "beta", "gamma", "delta"}

	// SafetyRatings: country_code → safety_rating.
	var safety []adm.Value
	for _, c := range countries {
		safety = append(safety, obj(
			"country_code", adm.String(c),
			"safety_rating", adm.String(fmt.Sprintf("%d", r.Intn(5)+1))))
	}
	cat.addDataset(t, "SafetyRatings", "country_code", 3, safety...)

	// ReligiousPopulations.
	var pops []adm.Value
	i := 0
	for _, c := range countries {
		for _, rel := range religions {
			pops = append(pops, obj(
				"rid", adm.String(fmt.Sprintf("rp%d", i)),
				"country_name", adm.String(c),
				"religion_name", adm.String(rel),
				"population", adm.Int(int64(r.Intn(1_000_000)))))
			i++
		}
	}
	cat.addDataset(t, "ReligiousPopulations", "rid", 3, pops...)

	// SensitiveWords (UDF 2 / Fig 18).
	var words []adm.Value
	for i, w := range []string{"bomb", "attack", "threat", "riot", "coup", "hostage"} {
		words = append(words, obj(
			"id", adm.Int(int64(i)),
			"country", adm.String(countries[i%4]),
			"word", adm.String(w)))
	}
	cat.addDataset(t, "SensitiveWords", "id", 3, words...)

	// SensitiveNamesDataset (Q4 fuzzy suspects).
	var suspects []adm.Value
	for i := 0; i < 60; i++ {
		suspects = append(suspects, obj(
			"id", adm.Int(int64(i)),
			"sensitiveName", adm.String(fmt.Sprintf("user%02d", i)),
			"religionName", adm.String(religions[i%len(religions)])))
	}
	cat.addDataset(t, "SensitiveNamesDataset", "id", 3, suspects...)

	// monumentList (Q5) with a spatial index.
	var monuments []adm.Value
	for i := 0; i < 300; i++ {
		monuments = append(monuments, obj(
			"monument_id", adm.String(fmt.Sprintf("m%d", i)),
			"monument_location", adm.Point(r.Float64()*40, r.Float64()*40)))
	}
	mds := cat.addDataset(t, "monumentList", "monument_id", 3, monuments...)
	if err := mds.CreateSpatialIndex("mloc", "monument_location"); err != nil {
		t.Fatal(err)
	}

	// ReligiousBuildings (Q6, Q8).
	var buildings []adm.Value
	for i := 0; i < 80; i++ {
		buildings = append(buildings, obj(
			"religious_building_id", adm.String(fmt.Sprintf("b%d", i)),
			"religion_name", adm.String(religions[i%len(religions)]),
			"building_location", adm.Point(r.Float64()*40, r.Float64()*40),
			"registered_believer", adm.Int(int64(r.Intn(5000)))))
	}
	cat.addDataset(t, "ReligiousBuildings", "religious_building_id", 3, buildings...)

	// Facilities (Q6, Q7).
	var facilities []adm.Value
	ftypes := []string{"school", "hospital", "stadium", "mall"}
	for i := 0; i < 150; i++ {
		facilities = append(facilities, obj(
			"facility_id", adm.String(fmt.Sprintf("f%d", i)),
			"facility_location", adm.Point(r.Float64()*40, r.Float64()*40),
			"facility_type", adm.String(ftypes[i%len(ftypes)])))
	}
	cat.addDataset(t, "Facilities", "facility_id", 3, facilities...)

	// SuspiciousNames (Q6).
	var sus []adm.Value
	for i := 0; i < 100; i++ {
		sus = append(sus, obj(
			"suspicious_name_id", adm.String(fmt.Sprintf("s%d", i)),
			"suspicious_name", adm.String(fmt.Sprintf("Name %02d", i%40)),
			"religion_name", adm.String(religions[i%len(religions)]),
			"threat_level", adm.Int(int64(r.Intn(10)))))
	}
	cat.addDataset(t, "SuspiciousNames", "suspicious_name_id", 3, sus...)

	// DistrictAreas + AverageIncomes + Persons (Q7).
	var districts, incomes []adm.Value
	for i := 0; i < 16; i++ {
		x := float64(i%4) * 10
		y := float64(i/4) * 10
		id := fmt.Sprintf("d%d", i)
		districts = append(districts, obj(
			"district_area_id", adm.String(id),
			"district_area", adm.Rectangle(x, y, x+10, y+10)))
		incomes = append(incomes, obj(
			"district_area_id", adm.String(id),
			"average_income", adm.Double(20000+float64(r.Intn(80000)))))
	}
	cat.addDataset(t, "DistrictAreas", "district_area_id", 2, districts...)
	cat.addDataset(t, "AverageIncomes", "district_area_id", 2, incomes...)
	var persons []adm.Value
	eth := []string{"e1", "e2", "e3"}
	for i := 0; i < 200; i++ {
		persons = append(persons, obj(
			"person_id", adm.String(fmt.Sprintf("p%d", i)),
			"ethnicity", adm.String(eth[i%len(eth)]),
			"location", adm.Point(r.Float64()*40, r.Float64()*40)))
	}
	cat.addDataset(t, "Persons", "person_id", 3, persons...)

	// AttackEvents (Q8).
	var attacks []adm.Value
	base := int64(1_546_300_800_000) // 2019-01-01
	for i := 0; i < 50; i++ {
		attacks = append(attacks, obj(
			"attack_record_id", adm.String(fmt.Sprintf("a%d", i)),
			"attack_datetime", adm.DateTimeMillis(base+int64(i)*86_400_000),
			"attack_location", adm.Point(r.Float64()*40, r.Float64()*40),
			"related_religion", adm.String(religions[i%len(religions)])))
	}
	cat.addDataset(t, "AttackEvents", "attack_record_id", 3, attacks...)

	// Native function used by Q4.
	cat.natives["testlib#removeSpecial"] = func(args []adm.Value) (adm.Value, error) {
		if args[0].Kind() != adm.KindString {
			return adm.Null(), nil
		}
		s := strings.Map(func(r rune) rune {
			if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
				return r
			}
			return -1
		}, args[0].StringVal())
		return adm.String(strings.ToLower(s)), nil
	}

	for _, ddl := range paperUDFs {
		cat.addSQLFunction(t, ddl)
	}
	return cat
}

// paperUDFs are the eight enrichment functions from the paper (Appendix
// A–H), with Q3's ORDER BY made DESC per the design note.
var paperUDFs = []string{
	`CREATE FUNCTION enrichTweetQ1(t) {
		LET safety_rating = (SELECT VALUE s.safety_rating
			FROM SafetyRatings s
			WHERE t.country = s.country_code)
		SELECT t.*, safety_rating
	};`,
	`CREATE FUNCTION enrichTweetQ2(t) {
		LET religious_population =
			(SELECT sum(r.population) FROM ReligiousPopulations r
			 WHERE r.country_name = t.country)[0]
		SELECT t.*, religious_population
	};`,
	`CREATE FUNCTION enrichTweetQ3(t) {
		LET largest_religions =
			(SELECT VALUE r.religion_name
			 FROM ReligiousPopulations r
			 WHERE r.country_name = t.country
			 ORDER BY r.population DESC LIMIT 3)
		SELECT t.*, largest_religions
	};`,
	`CREATE FUNCTION enrichTweetQ4(x) {
		LET related_suspects = (
			SELECT s.sensitiveName, s.religionName
			FROM SensitiveNamesDataset s
			WHERE edit_distance(
				testlib#removeSpecial(x.user.screen_name),
				s.sensitiveName) < 5)
		SELECT x.*, related_suspects
	};`,
	`CREATE FUNCTION enrichTweetQ5(t) {
		LET nearby_monuments =
			(SELECT VALUE m.monument_id
			 FROM monumentList m
			 WHERE spatial_intersect(
				m.monument_location,
				create_circle(create_point(t.latitude, t.longitude), 1.5)))
		SELECT t.*, nearby_monuments
	};`,
	`CREATE FUNCTION enrichTweetQ6(t) {
		LET nearby_facilities = (
			SELECT f.facility_type FacilityType, count(*) AS Cnt
			FROM Facilities f
			WHERE spatial_intersect(create_point(t.latitude, t.longitude),
				create_circle(f.facility_location, 3.0))
			GROUP BY f.facility_type),
		nearby_religious_buildings = (
			SELECT r.religious_building_id religious_building_id, r.religion_name religion_name
			FROM ReligiousBuildings r
			WHERE spatial_intersect(create_point(t.latitude, t.longitude),
				create_circle(r.building_location, 3.0))
			ORDER BY spatial_distance(create_point(t.latitude, t.longitude), r.building_location) LIMIT 3),
		suspicious_users_info = (
			SELECT s.suspicious_name_id suspect_id, s.religion_name AS religion, s.threat_level AS threat_level
			FROM SuspiciousNames s
			WHERE s.suspicious_name = t.user.name)
		SELECT t.*, nearby_facilities, nearby_religious_buildings, suspicious_users_info
	};`,
	`CREATE FUNCTION enrichTweetQ7(t) {
		LET area_avg_income = (
			SELECT VALUE a.average_income
			FROM AverageIncomes a, DistrictAreas d1
			WHERE a.district_area_id = d1.district_area_id
				AND spatial_intersect(create_point(t.latitude, t.longitude), d1.district_area)),
		area_facilities = (
			SELECT f.facility_type, count(*) AS Cnt
			FROM Facilities f, DistrictAreas d2
			WHERE spatial_intersect(f.facility_location, d2.district_area)
				AND spatial_intersect(create_point(t.latitude, t.longitude), d2.district_area)
			GROUP BY f.facility_type),
		ethnicity_dist = (
			SELECT ethnicity, count(*) AS EthnicityPopulation
			FROM Persons p, DistrictAreas d3
			WHERE spatial_intersect(create_point(t.latitude, t.longitude), d3.district_area)
				AND spatial_intersect(p.location, d3.district_area)
			GROUP BY p.ethnicity AS ethnicity)
		SELECT t.*, area_avg_income, area_facilities, ethnicity_dist
	};`,
	`CREATE FUNCTION enrichTweetQ8(t) {
		LET nearby_religious_attacks = (
			SELECT r.religion_name AS religion, count(a.attack_record_id) AS attack_num
			FROM ReligiousBuildings r, AttackEvents a
			WHERE spatial_intersect(create_point(t.latitude, t.longitude),
					create_circle(r.building_location, 3.0))
				AND t.created_at < a.attack_datetime + duration("P2M")
				AND t.created_at > a.attack_datetime
				AND r.religion_name = a.related_religion
			GROUP BY r.religion_name)
		SELECT t.*, nearby_religious_attacks
	};`,
}

func randomTweet(r *rand.Rand, id int64) adm.Value {
	countries := []string{"US", "FR", "DE", "BR", "IN", "CN", "JP", "MX", "GB", "IT"}
	texts := []string{
		"just a sunny day", "there was a bomb threat downtown",
		"attack on the title match", "lovely riot of colours",
		"hostage negotiation skills 101", "coffee and code",
	}
	return obj(
		"id", adm.Int(id),
		"text", adm.String(texts[r.Intn(len(texts))]),
		"country", adm.String(countries[r.Intn(len(countries))]),
		"user", obj(
			"screen_name", adm.String(fmt.Sprintf("u-ser_%02d!", r.Intn(80))),
			"name", adm.String(fmt.Sprintf("Name %02d", r.Intn(60)))),
		"latitude", adm.Double(r.Float64()*40),
		"longitude", adm.Double(r.Float64()*40),
		"created_at", adm.DateTimeMillis(1_546_300_800_000+int64(r.Intn(100))*86_400_000),
	)
}

func compilePaperUDF(t *testing.T, cat *testCatalog, name string, opts PlanOptions) *EnrichPlan {
	t.Helper()
	fn, ok := cat.Function(name)
	if !ok {
		t.Fatalf("udf %s not in catalog", name)
	}
	plan, err := CompileEnrich(fn.Name, fn.Params, fn.Body, cat, opts)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return plan
}

// TestEnrichPlanShapes asserts the planner picks the access paths the
// paper's Section 4.3 analysis predicts.
func TestEnrichPlanShapes(t *testing.T) {
	cat := paperCatalog(t)
	cases := []struct {
		udf  string
		want []string
	}{
		{"enrichTweetQ1", []string{"hash(SafetyRatings)"}},
		{"enrichTweetQ2", []string{"hash(ReligiousPopulations)"}},
		{"enrichTweetQ3", []string{"hash(ReligiousPopulations)"}},
		{"enrichTweetQ4", []string{"scan(SensitiveNamesDataset)"}},
		{"enrichTweetQ5", []string{"indexnlj(monumentList.monument_location)"}},
		{"enrichTweetQ6", []string{"rtree(Facilities)", "rtree(ReligiousBuildings)", "hash(SuspiciousNames)"}},
		{"enrichTweetQ7", []string{"rtree(DistrictAreas) + hash(AverageIncomes)",
			"rtree(DistrictAreas) + rtree(Facilities)", "rtree(DistrictAreas) + rtree(Persons)"}},
		{"enrichTweetQ8", []string{"rtree(ReligiousBuildings) + hash(AttackEvents)"}},
	}
	for _, tc := range cases {
		plan := compilePaperUDF(t, cat, tc.udf, PlanOptions{})
		desc := plan.Describe()
		if len(desc) != len(tc.want) {
			t.Errorf("%s: %d compiled subqueries (%v), want %d", tc.udf, len(desc), desc, len(tc.want))
			continue
		}
		for i, want := range tc.want {
			if !strings.HasPrefix(desc[i], want) {
				t.Errorf("%s sub %d: plan %q, want prefix %q", tc.udf, i, desc[i], want)
			}
		}
	}
	// Naive variant: disabling indexes turns Q5's index-NLJ into a
	// per-batch R-tree build.
	naive := compilePaperUDF(t, cat, "enrichTweetQ5", PlanOptions{DisableIndexes: true})
	if !strings.HasPrefix(naive.Describe()[0], "rtree(monumentList)") {
		t.Errorf("naive Q5 plan = %v", naive.Describe())
	}
}

// TestEnrichDifferential is the core correctness check: for every paper
// UDF, the compiled Prepare/EvalRecord path must produce exactly what
// generic evaluation of the same function produces, over many random
// tweets.
func TestEnrichDifferential(t *testing.T) {
	cat := paperCatalog(t)
	for _, udf := range []string{"enrichTweetQ1", "enrichTweetQ2", "enrichTweetQ3",
		"enrichTweetQ4", "enrichTweetQ5", "enrichTweetQ6", "enrichTweetQ7", "enrichTweetQ8"} {
		for _, disableIdx := range []bool{false, true} {
			plan := compilePaperUDF(t, cat, udf, PlanOptions{DisableIndexes: disableIdx})
			pe, err := plan.Prepare(cat)
			if err != nil {
				t.Fatalf("%s prepare: %v", udf, err)
			}
			fn, _ := cat.Function(udf)
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 40; i++ {
				tweet := randomTweet(r, int64(i))
				got, err := pe.EvalRecord(tweet)
				if err != nil {
					t.Fatalf("%s EvalRecord: %v", udf, err)
				}
				want, err := CallFunction(evalState{ctx: NewContext(cat)}, fn, []adm.Value{tweet})
				if err != nil {
					t.Fatalf("%s generic: %v", udf, err)
				}
				// Generic path returns the 1-element collection; compiled
				// path unwraps it.
				if want.Kind() == adm.KindArray && len(want.ArrayVal()) == 1 {
					want = want.Index(0)
				}
				if !equalUnordered(got, want) {
					t.Fatalf("%s(disableIdx=%v) tweet %d mismatch:\n got: %s\nwant: %s",
						udf, disableIdx, i, got, want)
				}
			}
		}
	}
}

// equalUnordered compares values, treating arrays NOT produced by ORDER
// BY as multisets (probe order differs from scan order). Since we cannot
// know which arrays are ordered here, it falls back to multiset equality
// whenever direct equality fails.
func equalUnordered(a, b adm.Value) bool {
	if adm.Equal(a, b) {
		return true
	}
	if a.Kind() == adm.KindArray && b.Kind() == adm.KindArray {
		ae, be := a.ArrayVal(), b.ArrayVal()
		if len(ae) != len(be) {
			return false
		}
		used := make([]bool, len(be))
	outer:
		for _, av := range ae {
			for j, bv := range be {
				if !used[j] && equalUnordered(av, bv) {
					used[j] = true
					continue outer
				}
			}
			return false
		}
		return true
	}
	if a.Kind() == adm.KindObject && b.Kind() == adm.KindObject {
		ao, bo := a.ObjectVal(), b.ObjectVal()
		if ao.Len() != bo.Len() {
			return false
		}
		for i := 0; i < ao.Len(); i++ {
			bv, ok := bo.Get(ao.Name(i))
			if !ok || !equalUnordered(ao.At(i), bv) {
				return false
			}
		}
		return true
	}
	return false
}

// TestEnrichSeesUpdatesPerBatch verifies the paper's central semantics:
// a prepared invocation is pinned to its snapshot; the *next* Prepare
// observes reference-data updates.
func TestEnrichSeesUpdatesPerBatch(t *testing.T) {
	cat := paperCatalog(t)
	plan := compilePaperUDF(t, cat, "enrichTweetQ1", PlanOptions{})
	pe1, err := plan.Prepare(cat)
	if err != nil {
		t.Fatal(err)
	}
	tweet := obj("id", adm.Int(1), "country", adm.String("US"))
	before, err := pe1.EvalRecord(tweet)
	if err != nil {
		t.Fatal(err)
	}

	// Update the US safety rating mid-batch.
	ds, _ := cat.Dataset("SafetyRatings")
	if err := ds.Upsert(obj("country_code", adm.String("US"), "safety_rating", adm.String("9"))); err != nil {
		t.Fatal(err)
	}

	// Same invocation: still the old value (snapshot isolation).
	again, err := pe1.EvalRecord(tweet)
	if err != nil {
		t.Fatal(err)
	}
	if !adm.Equal(before.Field("safety_rating"), again.Field("safety_rating")) {
		t.Error("mid-batch update leaked into a prepared invocation")
	}

	// Next invocation: sees the update.
	pe2, err := plan.Prepare(cat)
	if err != nil {
		t.Fatal(err)
	}
	after, err := pe2.EvalRecord(tweet)
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Field("safety_rating").Index(0).StringVal(); got != "9" {
		t.Errorf("next batch should see update, got %v", after.Field("safety_rating"))
	}
}

// TestEnrichIndexNLJSeesLiveUpdates: the index-NLJ anchor reads the
// dataset live (the paper's Nearby Monuments probes the index
// throughout the job), so even the same invocation sees new monuments.
func TestEnrichIndexNLJSeesLiveUpdates(t *testing.T) {
	cat := paperCatalog(t)
	plan := compilePaperUDF(t, cat, "enrichTweetQ5", PlanOptions{})
	if !strings.HasPrefix(plan.Describe()[0], "indexnlj") {
		t.Fatalf("expected index plan, got %v", plan.Describe())
	}
	pe, err := plan.Prepare(cat)
	if err != nil {
		t.Fatal(err)
	}
	tweet := obj("id", adm.Int(1), "latitude", adm.Double(100), "longitude", adm.Double(100))
	v, err := pe.EvalRecord(tweet)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(v.Field("nearby_monuments").ArrayVal()); n != 0 {
		t.Fatalf("no monuments expected at (100,100), got %d", n)
	}
	ds, _ := cat.Dataset("monumentList")
	if err := ds.Upsert(obj("monument_id", adm.String("new"),
		"monument_location", adm.Point(100, 100))); err != nil {
		t.Fatal(err)
	}
	v, err = pe.EvalRecord(tweet)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(v.Field("nearby_monuments").ArrayVal()); n != 1 {
		t.Errorf("index-NLJ should see live insert, got %d monuments", n)
	}
}

// TestEnrichConstSubquery: the Fig 18 pattern — a fully-uncorrelated
// subquery is evaluated once per batch.
func TestEnrichConstSubquery(t *testing.T) {
	cat := paperCatalog(t)
	cat.addSQLFunction(t, `CREATE FUNCTION highRiskTweetCheck(t) {
		LET high_risk_flag = CASE
			t.country IN (SELECT VALUE s.country
				FROM SensitiveWords s
				GROUP BY s.country
				ORDER BY count(s) DESC
				LIMIT 10)
			WHEN true THEN "Red" ELSE "Green" END
		SELECT t.*, high_risk_flag
	};`)
	plan := compilePaperUDF(t, cat, "highRiskTweetCheck", PlanOptions{})
	desc := plan.Describe()
	if len(desc) != 1 || desc[0] != "const" {
		t.Fatalf("plan = %v, want [const]", desc)
	}
	pe, err := plan.Prepare(cat)
	if err != nil {
		t.Fatal(err)
	}
	// US is in SensitiveWords' countries.
	v, err := pe.EvalRecord(obj("id", adm.Int(1), "country", adm.String("US")))
	if err != nil {
		t.Fatal(err)
	}
	if v.Field("high_risk_flag").StringVal() != "Red" {
		t.Errorf("US should be high risk: %v", v)
	}
	v, _ = pe.EvalRecord(obj("id", adm.Int(2), "country", adm.String("IT")))
	if v.Field("high_risk_flag").StringVal() != "Green" {
		t.Errorf("IT should be green: %v", v)
	}
}

// TestEnrichExistsUDF2: the paper's UDF 2 (EXISTS + contains residual)
// compiles to a hash anchor and early-terminates.
func TestEnrichExistsUDF2(t *testing.T) {
	cat := paperCatalog(t)
	cat.addSQLFunction(t, `CREATE FUNCTION tweetSafetyCheck(tweet) {
		LET safety_check_flag = CASE
			EXISTS(SELECT s FROM SensitiveWords s
				WHERE tweet.country = s.country AND contains(tweet.text, s.word))
			WHEN true THEN "Red" ELSE "Green" END
		SELECT tweet.*, safety_check_flag
	};`)
	plan := compilePaperUDF(t, cat, "tweetSafetyCheck", PlanOptions{})
	if !strings.HasPrefix(plan.Describe()[0], "hash(SensitiveWords)") {
		t.Fatalf("plan = %v", plan.Describe())
	}
	pe, err := plan.Prepare(cat)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pe.EvalRecord(obj("id", adm.Int(1), "country", adm.String("US"),
		"text", adm.String("a bomb went off")))
	if err != nil {
		t.Fatal(err)
	}
	if v.Field("safety_check_flag").StringVal() != "Red" {
		t.Errorf("expected Red, got %v", v)
	}
	v, _ = pe.EvalRecord(obj("id", adm.Int(2), "country", adm.String("US"),
		"text", adm.String("nice weather")))
	if v.Field("safety_check_flag").StringVal() != "Green" {
		t.Errorf("expected Green, got %v", v)
	}
}

// TestEnrichStatelessUDF1: a stateless UDF compiles with no subplans and
// never touches the catalog during EvalRecord.
func TestEnrichStatelessUDF1(t *testing.T) {
	cat := paperCatalog(t)
	cat.addSQLFunction(t, `CREATE FUNCTION USTweetSafetyCheck(tweet) {
		LET safety_check_flag =
			CASE tweet.country = "US" AND contains(tweet.text, "bomb")
			WHEN true THEN "Red" ELSE "Green" END
		SELECT tweet.*, safety_check_flag
	};`)
	plan := compilePaperUDF(t, cat, "USTweetSafetyCheck", PlanOptions{})
	if len(plan.Describe()) != 0 {
		t.Fatalf("stateless UDF should compile no subplans: %v", plan.Describe())
	}
	pe, err := plan.Prepare(cat)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pe.EvalRecord(obj("id", adm.Int(1), "country", adm.String("US"),
		"text", adm.String("bomb scare")))
	if err != nil {
		t.Fatal(err)
	}
	if v.Field("safety_check_flag").StringVal() != "Red" {
		t.Errorf("UDF 1 = %v", v)
	}
}

func TestCompileEnrichRejectsMultiParam(t *testing.T) {
	cat := paperCatalog(t)
	e, _ := sqlpp.ParseExpr(`a + b`)
	if _, err := CompileEnrich("f", []string{"a", "b"}, e, cat, PlanOptions{}); err == nil {
		t.Error("multi-parameter UDF must be rejected for enrichment")
	}
}

func TestEnrichEvalRecordConcurrent(t *testing.T) {
	cat := paperCatalog(t)
	plan := compilePaperUDF(t, cat, "enrichTweetQ6", PlanOptions{})
	pe, err := plan.Prepare(cat)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				if _, err := pe.EvalRecord(randomTweet(r, int64(i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
