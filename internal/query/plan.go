package query

import (
	"fmt"
	"strings"

	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// PlanOptions tunes enrichment compilation.
type PlanOptions struct {
	// DisableIndexes forces per-batch structures instead of index
	// nested-loop joins even when a persistent spatial index exists (the
	// paper's "Naive Nearby Monuments" query hint).
	DisableIndexes bool
}

// EnrichPlan is a compiled stateful enrichment UDF: the analysis is done
// once (at CREATE FUNCTION / CONNECT FEED time — the predeployed-job
// analog), and each computing-job invocation calls Prepare to rebuild
// the batch-scoped state from fresh snapshots, then EvalRecord per
// record. This realizes the paper's Model 2: intermediate states are
// refreshed from batch to batch, so reference-data changes are observed,
// while per-record work is a cheap probe.
type EnrichPlan struct {
	// Name is the UDF name (diagnostics only).
	Name  string
	param string
	body  sqlpp.Expr
	subs  map[*sqlpp.SelectExpr]*subPlan
	order []*sqlpp.SelectExpr // deterministic Prepare order
	opts  PlanOptions

	usesDatasets bool
}

type subKind int

const (
	constSub subKind = iota // no free variables: evaluate once per batch
	probeSub                // parameter-correlated: build/probe split
)

type accessKind int

const (
	accessHash     accessKind = iota // build hash table, probe by key
	accessRTree                      // build transient R-tree shards, probe by rect
	accessIndexNLJ                   // probe the dataset's live spatial index
	accessScan                       // materialize and scan per record
)

// subPlan is the compile-time shape of one correlated subquery.
type subPlan struct {
	kind     subKind
	sel      *sqlpp.SelectExpr
	accesses []accessPlan
	// residuals are the conjuncts re-checked on each candidate tuple
	// (exact spatial predicates, similarity predicates, time windows).
	residuals []sqlpp.Expr
}

// accessPlan describes how one FROM alias is satisfied: accesses[0] is
// the anchor (probed per incoming record), the rest join outward from
// already-placed aliases.
type accessPlan struct {
	kind    accessKind
	alias   string
	dataset string
	filters []sqlpp.Expr // alias-only conjuncts applied while building

	buildKey sqlpp.Expr // accessHash: key over the alias record
	probeKey sqlpp.Expr // accessHash: key over param/placed bindings

	buildRect sqlpp.Expr // accessRTree: geometry over the alias record
	probeRect sqlpp.Expr // accessRTree/IndexNLJ: geometry over outer bindings

	indexField string  // accessIndexNLJ: indexed field
	expand     float64 // accessIndexNLJ: query-rect expansion radius
}

// CompileEnrich analyzes a unary SQL++ UDF body and produces its
// enrichment plan. Subqueries with no free variables become per-batch
// constants; parameter-correlated subqueries over catalog datasets get
// the build/probe treatment; anything else falls back to generic
// per-record evaluation (still correct, just Model-1-shaped).
func CompileEnrich(name string, params []string, body sqlpp.Expr, cat Catalog, opts PlanOptions) (*EnrichPlan, error) {
	if len(params) != 1 {
		return nil, fmt.Errorf("query: enrichment UDF %s must take exactly one parameter", name)
	}
	plan := &EnrichPlan{
		Name:  name,
		param: params[0],
		body:  body,
		subs:  make(map[*sqlpp.SelectExpr]*subPlan),
		opts:  opts,
	}
	var sels []*sqlpp.SelectExpr
	if root, ok := body.(*sqlpp.SelectExpr); ok && len(root.From) == 0 {
		// The usual UDF shape: LET ... SELECT projection with no FROM.
		// Collect subqueries from its clauses; the root itself is the
		// per-record projection template.
		for _, l := range root.Lets {
			collectSubqueries(l.Expr, &sels)
		}
		collectSubqueries(root.SelectValue, &sels)
		for _, p := range root.Projections {
			collectSubqueries(p.Expr, &sels)
		}
		collectSubqueries(root.Where, &sels)
	} else {
		collectSubqueries(body, &sels)
	}
	for _, sel := range sels {
		sp := plan.classify(sel, cat)
		if sp != nil {
			plan.subs[sel] = sp
			plan.order = append(plan.order, sel)
		}
	}
	return plan, nil
}

// collectSubqueries gathers outermost SELECT blocks used as expressions.
func collectSubqueries(e sqlpp.Expr, out *[]*sqlpp.SelectExpr) {
	switch n := e.(type) {
	case nil:
	case *sqlpp.SubqueryExpr:
		*out = append(*out, n.Sel)
	case *sqlpp.Exists:
		*out = append(*out, n.Sub)
	case *sqlpp.SelectExpr:
		*out = append(*out, n)
	case *sqlpp.FieldAccess:
		collectSubqueries(n.Base, out)
	case *sqlpp.IndexAccess:
		collectSubqueries(n.Base, out)
		collectSubqueries(n.Index, out)
	case *sqlpp.Call:
		for _, a := range n.Args {
			collectSubqueries(a, out)
		}
	case *sqlpp.Unary:
		collectSubqueries(n.X, out)
	case *sqlpp.Binary:
		collectSubqueries(n.L, out)
		collectSubqueries(n.R, out)
	case *sqlpp.CaseExpr:
		collectSubqueries(n.Operand, out)
		for _, w := range n.Whens {
			collectSubqueries(w.When, out)
			collectSubqueries(w.Then, out)
		}
		collectSubqueries(n.Else, out)
	case *sqlpp.In:
		collectSubqueries(n.X, out)
		collectSubqueries(n.Coll, out)
	case *sqlpp.ArrayCtor:
		for _, el := range n.Elems {
			collectSubqueries(el, out)
		}
	case *sqlpp.ObjectCtor:
		for _, f := range n.Fields {
			collectSubqueries(f.Val, out)
		}
	}
}

// classify decides const / probe / generic (nil) for one subquery.
func (plan *EnrichPlan) classify(sel *sqlpp.SelectExpr, cat Catalog) *subPlan {
	fv := make(map[string]bool)
	freeVarsSelect(sel, nil, fv)
	// Dataset names resolve through the catalog, not the environment.
	for name := range fv {
		if _, ok := cat.Dataset(name); ok {
			delete(fv, name)
			plan.usesDatasets = true
		}
	}
	if len(fv) == 0 {
		return &subPlan{kind: constSub, sel: sel}
	}
	if len(fv) != 1 || !fv[plan.param] {
		return nil // references outer LETs or other names: generic eval
	}
	return plan.compileProbe(sel, cat)
}

// compileProbe performs the anchor/join/residual decomposition.
func (plan *EnrichPlan) compileProbe(sel *sqlpp.SelectExpr, cat Catalog) *subPlan {
	if len(sel.Lets) > 0 || len(sel.From) == 0 {
		return nil
	}
	datasets := make(map[string]string, len(sel.From)) // alias → dataset
	var aliases []string
	for _, fc := range sel.From {
		id, ok := fc.Source.(*sqlpp.Ident)
		if !ok {
			return nil
		}
		if _, isDS := cat.Dataset(id.Name); !isDS {
			return nil
		}
		if _, dup := datasets[fc.Alias]; dup || fc.Alias == "" {
			return nil
		}
		datasets[fc.Alias] = id.Name
		aliases = append(aliases, fc.Alias)
	}
	aliasSet := make(map[string]bool, len(aliases))
	for _, a := range aliases {
		aliasSet[a] = true
	}

	conjuncts := splitConjuncts(sel.Where)
	type conjInfo struct {
		expr       sqlpp.Expr
		aliasRefs  []string
		paramDep   bool
		otherNames bool // references something that is neither param nor alias
	}
	infos := make([]conjInfo, len(conjuncts))
	for i, c := range conjuncts {
		fv := FreeVars(c)
		ci := conjInfo{expr: c}
		for name := range fv {
			switch {
			case aliasSet[name]:
				ci.aliasRefs = append(ci.aliasRefs, name)
			case name == plan.param:
				ci.paramDep = true
			default:
				if _, isDS := cat.Dataset(name); !isDS {
					ci.otherNames = true
				}
			}
		}
		infos[i] = ci
	}

	consumed := make([]bool, len(conjuncts))
	filters := make(map[string][]sqlpp.Expr)

	// Step 1: alias-only conjuncts become build filters.
	for i, ci := range infos {
		if !ci.paramDep && !ci.otherNames && len(ci.aliasRefs) == 1 {
			filters[ci.aliasRefs[0]] = append(filters[ci.aliasRefs[0]], ci.expr)
			consumed[i] = true
		}
	}

	// sideOf classifies an expression side: "" = constants only,
	// alias name = that alias only, "$outer" = param/mixed-placed.
	sideOf := func(e sqlpp.Expr, placed map[string]bool) (aliasOnly string, outerOK bool) {
		fv := FreeVars(e)
		alias := ""
		outer := true
		for name := range fv {
			if aliasSet[name] {
				if placed != nil && placed[name] {
					continue // placed aliases are bound at probe time
				}
				if alias == "" {
					alias = name
				} else if alias != name {
					alias = "$multi"
				}
				outer = false
			} else if name != plan.param {
				if _, isDS := cat.Dataset(name); !isDS {
					return "$other", false
				}
			}
		}
		return alias, outer
	}

	var residuals []sqlpp.Expr

	// makeAccess tries to derive an access plan for alias A from conjunct
	// ci, with `placed` aliases considered bound. Returns nil when the
	// conjunct is not probe-able.
	makeAccess := func(ci conjInfo, placed map[string]bool) *accessPlan {
		if ci.otherNames {
			return nil
		}
		switch e := ci.expr.(type) {
		case *sqlpp.Binary:
			if e.Op != "=" {
				return nil
			}
			la, lOuter := sideOf(e.L, placed)
			ra, rOuter := sideOf(e.R, placed)
			if la != "" && la != "$multi" && la != "$other" && ra == "" && rOuter {
				return &accessPlan{kind: accessHash, alias: la, dataset: datasets[la],
					buildKey: e.L, probeKey: e.R}
			}
			if ra != "" && ra != "$multi" && ra != "$other" && la == "" && lOuter {
				return &accessPlan{kind: accessHash, alias: ra, dataset: datasets[ra],
					buildKey: e.R, probeKey: e.L}
			}
		case *sqlpp.Call:
			if e.Ns != "" || strings.ToLower(e.Name) != "spatial_intersect" || len(e.Args) != 2 {
				return nil
			}
			la, lOuter := sideOf(e.Args[0], placed)
			ra, rOuter := sideOf(e.Args[1], placed)
			if la != "" && la != "$multi" && la != "$other" && ra == "" && rOuter {
				return plan.spatialAccess(la, datasets[la], e.Args[0], e.Args[1], cat)
			}
			if ra != "" && ra != "$multi" && ra != "$other" && la == "" && lOuter {
				return plan.spatialAccess(ra, datasets[ra], e.Args[1], e.Args[0], cat)
			}
		}
		return nil
	}

	// Step 2: pick the anchor — prefer hash over spatial over scan.
	var anchor *accessPlan
	anchorConj := -1
	for pass := 0; pass < 2 && anchor == nil; pass++ {
		for i, ci := range infos {
			if consumed[i] || !ci.paramDep || len(ci.aliasRefs) != 1 {
				continue
			}
			acc := makeAccess(ci, nil)
			if acc == nil {
				continue
			}
			if pass == 0 && acc.kind != accessHash {
				continue
			}
			anchor = acc
			anchorConj = i
			break
		}
	}
	if anchor == nil {
		// Scan anchor: an alias referenced by a param-dependent conjunct,
		// else the first alias.
		target := aliases[0]
		for _, ci := range infos {
			if ci.paramDep && len(ci.aliasRefs) == 1 {
				target = ci.aliasRefs[0]
				break
			}
		}
		anchor = &accessPlan{kind: accessScan, alias: target, dataset: datasets[target]}
	} else {
		consumed[anchorConj] = true
		if anchor.kind != accessHash {
			// Spatial anchors are approximate: re-check the predicate.
			residuals = append(residuals, infos[anchorConj].expr)
		}
	}
	anchor.filters = filters[anchor.alias]

	accesses := []accessPlan{*anchor}
	placed := map[string]bool{anchor.alias: true}

	// Step 3: place remaining aliases by following join predicates.
	for len(placed) < len(aliases) {
		progressed := false
		for i, ci := range infos {
			if consumed[i] {
				continue
			}
			// Exactly one unplaced alias, everything else placed/outer.
			unplaced := ""
			ok := true
			for _, a := range ci.aliasRefs {
				if placed[a] {
					continue
				}
				if unplaced != "" && unplaced != a {
					ok = false
					break
				}
				unplaced = a
			}
			if !ok || unplaced == "" {
				continue
			}
			acc := makeAccess(ci, placed)
			if acc == nil || acc.alias != unplaced {
				continue
			}
			// Index-NLJ only makes sense for the anchor; joined aliases
			// use batch structures (the index probe fan-out would repeat
			// per candidate anyway, but keep the paper's plan shape).
			if acc.kind == accessIndexNLJ {
				acc.kind = accessRTree
			}
			consumed[i] = true
			if acc.kind != accessHash {
				residuals = append(residuals, ci.expr)
			}
			acc.filters = filters[acc.alias]
			accesses = append(accesses, *acc)
			placed[acc.alias] = true
			progressed = true
			break
		}
		if !progressed {
			// Cartesian fallback for an unconstrained alias.
			for _, a := range aliases {
				if !placed[a] {
					accesses = append(accesses, accessPlan{
						kind: accessScan, alias: a, dataset: datasets[a],
						filters: filters[a],
					})
					placed[a] = true
					break
				}
			}
		}
	}

	// Step 4: everything unconsumed is a residual.
	for i, ci := range infos {
		if !consumed[i] {
			residuals = append(residuals, ci.expr)
		}
	}

	return &subPlan{kind: probeSub, sel: sel, accesses: accesses, residuals: residuals}
}

// spatialAccess builds the R-tree (or index-NLJ) access for a spatial
// predicate whose aliasExpr side covers the dataset records and whose
// probeExpr side is evaluated per incoming record.
func (plan *EnrichPlan) spatialAccess(alias, dataset string, aliasExpr, probeExpr sqlpp.Expr, cat Catalog) *accessPlan {
	acc := &accessPlan{
		kind: accessRTree, alias: alias, dataset: dataset,
		buildRect: aliasExpr, probeRect: probeExpr,
	}
	if plan.opts.DisableIndexes {
		return acc
	}
	field, radius, ok := fieldWithRadius(aliasExpr, alias)
	if !ok {
		return acc
	}
	ds, found := cat.Dataset(dataset)
	if !found || ds.RTreeIndexForField(field) == nil {
		return acc
	}
	acc.kind = accessIndexNLJ
	acc.indexField = field
	acc.expand = radius
	return acc
}

// fieldWithRadius recognizes the two indexable alias-side shapes:
// alias.field (radius 0) and create_circle(alias.field, const).
func fieldWithRadius(e sqlpp.Expr, alias string) (string, float64, bool) {
	if fa, ok := simpleField(e, alias); ok {
		return fa, 0, true
	}
	call, ok := e.(*sqlpp.Call)
	if !ok || call.Ns != "" || strings.ToLower(call.Name) != "create_circle" || len(call.Args) != 2 {
		return "", 0, false
	}
	field, ok := simpleField(call.Args[0], alias)
	if !ok {
		return "", 0, false
	}
	lit, ok := call.Args[1].(*sqlpp.Literal)
	if !ok {
		return "", 0, false
	}
	r, ok := lit.Val.AsDouble()
	if !ok {
		return "", 0, false
	}
	return field, r, true
}

func simpleField(e sqlpp.Expr, alias string) (string, bool) {
	fa, ok := e.(*sqlpp.FieldAccess)
	if !ok {
		return "", false
	}
	id, ok := fa.Base.(*sqlpp.Ident)
	if !ok || id.Name != alias {
		return "", false
	}
	return fa.Field, true
}

// Describe reports the chosen strategy per compiled subquery — the
// experiments print it, and tests assert on it.
func (plan *EnrichPlan) Describe() []string {
	var out []string
	for _, sel := range plan.order {
		sp := plan.subs[sel]
		if sp.kind == constSub {
			out = append(out, "const")
			continue
		}
		desc := ""
		for i, acc := range sp.accesses {
			if i > 0 {
				desc += " + "
			}
			switch acc.kind {
			case accessHash:
				desc += fmt.Sprintf("hash(%s)", acc.dataset)
			case accessRTree:
				desc += fmt.Sprintf("rtree(%s)", acc.dataset)
			case accessIndexNLJ:
				desc += fmt.Sprintf("indexnlj(%s.%s)", acc.dataset, acc.indexField)
			case accessScan:
				desc += fmt.Sprintf("scan(%s)", acc.dataset)
			}
		}
		out = append(out, fmt.Sprintf("%s, %d residual(s)", desc, len(sp.residuals)))
	}
	return out
}

// Param returns the UDF's parameter name.
func (plan *EnrichPlan) Param() string { return plan.param }

// Stateless reports whether the UDF touches no reference data at all —
// the paper's stateless class, the only kind the old streaming pipeline
// can evaluate correctly.
func (plan *EnrichPlan) Stateless() bool { return !plan.usesDatasets }

// datasetFor resolves at prepare time.
func datasetFor(cat Catalog, name string) (*lsm.Dataset, error) {
	ds, ok := cat.Dataset(name)
	if !ok {
		return nil, fmt.Errorf("query: unknown dataset %q", name)
	}
	return ds, nil
}
