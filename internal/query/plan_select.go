package query

import (
	"fmt"
	"strings"
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/index"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// ExecuteSelectCursor plans and opens a pull cursor for a query block.
// Leading LETs and the LIMIT expression are evaluated eagerly (they are
// bound once per query); everything downstream is pulled lazily.
//
// Planning decisions, in order:
//
//  1. Index pushdown — an equality or range conjunct on a
//     field-indexed column of the first FROM dataset becomes a
//     secondary-index range probe resolved through the primary,
//     instead of a full scan. The full WHERE stays as a residual
//     filter, so over-approximate postings (cross-typed keys inside
//     the range, stale-but-matching entries) never leak.
//  2. Parallel partition scan — a multi-partition dataset scanned by a
//     blocking consumer (GROUP BY / ORDER BY) or an unbounded one
//     (no LIMIT) scans its partitions concurrently. Partition-order
//     merge keeps output byte-identical to the serial scan; ORDER BY
//     on the primary key ascending upgrades to a global key-order
//     merge that replaces the sort; an order-insensitive aggregate
//     (count/min/max, no GROUP BY) fans in unordered. Concurrency-safe
//     WHERE conjuncts are evaluated inside the scan workers.
//  3. Serial scan — everything else.
func ExecuteSelectCursor(ctx *Context, env *Env, sel *sqlpp.SelectExpr) (*RowCursor, error) {
	st, err := evalState{ctx: ctx}.deeper()
	if err != nil {
		return nil, err
	}
	rc := &RowCursor{st: st, sel: sel, limit: -1}
	for _, l := range sel.Lets {
		v, err := eval(st, env, l.Expr)
		if err != nil {
			return nil, err
		}
		env = Bind(env, l.Name, v)
	}
	if sel.Limit != nil {
		lv, err := eval(st, nil, sel.Limit)
		if err != nil {
			return nil, err
		}
		n, ok := lv.AsInt()
		if !ok || n < 0 {
			return nil, fmt.Errorf("query: LIMIT must be a non-negative integer")
		}
		rc.limit = n
	}

	// Pin the snapshots of every dataset named in FROM position now,
	// before returning the cursor: the caller's consistency contract is
	// "the data as of the Query call", not "as of the first Next".
	// (Datasets touched only inside subqueries or UDFs pin on first
	// access, per the Context rule.)
	scope := env
	for _, fc := range sel.From {
		if id, isIdent := fc.Source.(*sqlpp.Ident); isIdent {
			if _, bound := scope.Lookup(id.Name); !bound && ctx.Catalog != nil {
				if _, isDS := ctx.Catalog.Dataset(id.Name); isDS {
					if _, err := ctx.Pin(id.Name); err != nil {
						return nil, err
					}
				}
			}
		}
		// Later FROM clauses may reference this alias; approximate the
		// scope by binding it to MISSING (only presence matters here).
		scope = Bind(scope, fc.Alias, adm.Missing())
	}

	rows, plan, err := planSelect(st, env, sel, rc.limit)
	if err != nil {
		return nil, err
	}
	rc.rows = rows
	rc.plan = plan
	if sel.Distinct {
		rc.dedup = newValueDedup()
	}
	return rc, nil
}

// planSelect assembles the operator pipeline under the base env (with
// leading LETs already bound) and returns it with its plan string.
func planSelect(st evalState, env *Env, sel *sqlpp.SelectExpr, limit int64) (rowSrc, string, error) {
	grouped := len(sel.GroupBy) > 0 || selectHasAggregate(sel)
	var aggCalls []*sqlpp.Call
	if grouped {
		aggCalls = collectSelectAggs(sel)
	}

	var steps []string
	var cur tupleCursor
	wherePushed := false
	orderHandled := false
	reuse := false

	if len(sel.From) > 0 {
		leaf, desc, pushed, keyOrdered, ok, err := planScanLeaf(st, env, sel, grouped, aggCalls, limit)
		if err != nil {
			return nil, "", err
		}
		if ok {
			// Env-reuse mode: the scan leaf recycles one binding box per
			// record, so the bounded top-k heap and the streaming hash
			// aggregate run allocation-flat. Only legal when nothing
			// between the scan and the consumer retains an env without
			// copying: single FROM, no FROM-LETs, a WHERE (if any) free
			// of calls and subqueries, and a consumer that copies what it
			// keeps — the top-k heap (copyEnv) or the hash aggregate
			// (copyRep, one snapshot per new group).
			safeWhere := sel.Where == nil || pushed || safeParallelPred(sel.Where)
			topkReuse := !grouped && len(sel.OrderBy) > 0 && !keyOrdered &&
				limit >= 0 && !sel.Distinct
			reuse = len(sel.From) == 1 && len(sel.FromLets) == 0 && safeWhere &&
				(topkReuse || grouped)
			cur = &scanFromCursor{base: env, alias: sel.From[0].Alias, leaf: leaf, reuse: reuse}
			steps = append(steps, desc)
			wherePushed = pushed
			orderHandled = keyOrdered
		}
	}
	if cur == nil {
		cur = &singleCursor{env: env}
	}
	for i, fc := range sel.From {
		if i == 0 && len(steps) > 0 {
			continue // planned leaf covers the first clause
		}
		cur = &fromCursor{st: st, outer: cur, src: fc.Source, alias: fc.Alias}
		steps = append(steps, "from("+fc.Alias+")")
	}
	if len(sel.FromLets) > 0 {
		cur = &letCursor{st: st, inner: cur, lets: sel.FromLets}
		steps = append(steps, "let")
	}
	if sel.Where != nil && !wherePushed {
		cur = &filterCursor{st: st, inner: cur, pred: sel.Where}
		steps = append(steps, "filter")
	}

	var rows rowSrc
	if grouped {
		rows = &aggRows{st: st, inner: cur, keys: sel.GroupBy, calls: aggCalls, copyRep: reuse}
		steps = append(steps, fmt.Sprintf("aggregate(%dkeys,%daggs)", len(sel.GroupBy), len(aggCalls)))
	} else {
		rows = &tupleRows{inner: cur}
	}
	switch {
	case orderHandled:
		steps = append(steps, "ordered-by-key")
	case len(sel.OrderBy) > 0:
		k := int64(-1)
		if limit >= 0 && !sel.Distinct {
			// DISTINCT limits distinct projected rows, not input rows, so
			// the heap cannot be bounded under it.
			k = limit
		}
		// Grouped rows carry per-group envs already (aggRows copied the
		// representatives); only raw scan rows need copying on accept.
		rows = &topkRows{st: st, inner: rows, orderBy: sel.OrderBy, k: k, copyEnv: reuse && !grouped}
		if k >= 0 {
			steps = append(steps, fmt.Sprintf("topk(%d)", k))
		} else {
			steps = append(steps, "sort")
		}
	}
	steps = append(steps, "project")
	if sel.Distinct {
		steps = append(steps, "distinct")
	}
	if limit >= 0 {
		steps = append(steps, fmt.Sprintf("limit(%d)", limit))
	}
	return rows, strings.Join(steps, "→"), nil
}

// planScanLeaf builds the record stream for the first FROM clause when
// it names a dataset: an index range probe, a parallel partition scan,
// or a serial scan. ok=false means the clause is not a plannable
// dataset scan (expression source, shadowed name) and the generic
// fromCursor path applies.
func planScanLeaf(st evalState, env *Env, sel *sqlpp.SelectExpr, grouped bool, aggCalls []*sqlpp.Call, limit int64) (leaf collCursor, desc string, pushed, keyOrdered, ok bool, err error) {
	fc := sel.From[0]
	id, isIdent := fc.Source.(*sqlpp.Ident)
	if !isIdent || st.ctx.Catalog == nil {
		return nil, "", false, false, false, nil
	}
	if _, bound := env.Lookup(id.Name); bound {
		return nil, "", false, false, false, nil
	}
	ds, isDS := st.ctx.Catalog.Dataset(id.Name)
	if !isDS {
		return nil, "", false, false, false, nil
	}
	snaps, err := st.ctx.Pin(id.Name)
	if err != nil {
		return nil, "", false, false, false, err
	}

	// 1. Index pushdown.
	if !st.ctx.DisableIndexScan && sel.Where != nil {
		if field, idxName, idxs, lo, hi, found := pickIndexRange(st.ctx, ds, fc.Alias, sel.Where); found {
			sc := lsm.NewIndexScanCursor(snaps, idxs, lo, hi)
			return &indexScanColl{sc: sc},
				fmt.Sprintf("iscan(%s.%s on %s)", id.Name, idxName, field),
				false, false, true, nil
		}
	}

	// 2. Parallel partition scan.
	parts := len(snaps)
	blocking := grouped || len(sel.OrderBy) > 0
	if !st.ctx.DisableParallelScan && parts > 1 && (blocking || limit < 0) {
		order := lsm.PartitionOrder
		if !grouped && orderByIsPkAsc(sel, fc.Alias, ds.PrimaryKey()) {
			order = lsm.KeyOrder
			keyOrdered = true
		} else if unorderedSafe(sel, aggCalls) {
			order = lsm.Unordered
		}
		var filter func(key, rec adm.Value) (bool, error)
		if sel.Where != nil && len(sel.From) == 1 && len(sel.FromLets) == 0 && safeParallelPred(sel.Where) {
			where, alias, base, fst := sel.Where, fc.Alias, env, st
			// Workers call the filter concurrently; each call borrows a
			// pooled binding box instead of allocating an Env per record
			// (safeParallelPred guarantees evaluation never retains it).
			boxes := sync.Pool{New: func() any { return &Env{parent: base, name: alias} }}
			filter = func(_, rec adm.Value) (bool, error) {
				box := boxes.Get().(*Env)
				box.val = rec
				v, err := eval(fst, box, where)
				boxes.Put(box)
				if err != nil {
					return false, err
				}
				return Truthy(v), nil
			}
			pushed = true
		}
		pc := lsm.NewParallelScanCursor(snaps, filter, order, 0)
		desc = fmt.Sprintf("pscan(%s,%s,%d)", id.Name, orderName(order), parts)
		if pushed {
			desc += "+filter"
		}
		return &parallelColl{pc: pc}, desc, pushed, keyOrdered, true, nil
	}

	// 3. Serial scan.
	return &datasetCursor{sc: lsm.NewScanCursor(snaps)},
		fmt.Sprintf("scan(%s)", id.Name), false, false, true, nil
}

func orderName(o lsm.ScanOrder) string {
	switch o {
	case lsm.KeyOrder:
		return "key"
	case lsm.Unordered:
		return "unordered"
	}
	return "partition"
}

// orderByIsPkAsc reports whether ORDER BY is exactly the scanned
// dataset's primary key ascending — then a key-order partition merge
// already produces the output order and the sort stage is dropped.
func orderByIsPkAsc(sel *sqlpp.SelectExpr, alias, pk string) bool {
	if len(sel.OrderBy) != 1 || sel.OrderBy[0].Desc {
		return false
	}
	f, ok := aliasField(sel.OrderBy[0].Expr, alias)
	return ok && f == pk
}

// unorderedSafe gates the unordered fan-in: a single implicit group
// whose aggregates are insensitive to arrival order (count/min/max;
// sum/avg float folding is order-dependent) and whose output
// expressions reference nothing but those aggregates — the group's
// representative tuple is arrival-dependent, so it must not leak.
func unorderedSafe(sel *sqlpp.SelectExpr, aggCalls []*sqlpp.Call) bool {
	if len(sel.GroupBy) > 0 || len(sel.OrderBy) > 0 || len(aggCalls) == 0 {
		return false
	}
	for _, call := range aggCalls {
		switch strings.ToLower(call.Name) {
		case "count", "min", "max":
		default:
			return false
		}
	}
	if sel.SelectValue != nil && !exprRowFree(sel.SelectValue) {
		return false
	}
	for _, p := range sel.Projections {
		if p.Star || !exprRowFree(p.Expr) {
			return false
		}
	}
	return true
}

// exprRowFree reports whether an expression can be evaluated without
// touching the row environment — aggregate calls count as row-free
// (they resolve from accumulators), bare identifiers do not.
func exprRowFree(e sqlpp.Expr) bool {
	switch n := e.(type) {
	case nil:
		return true
	case *sqlpp.Literal, *sqlpp.Param:
		return true
	case *sqlpp.Call:
		if n.Ns == "" && IsAggregate(strings.ToLower(n.Name)) {
			return true
		}
		for _, a := range n.Args {
			if !exprRowFree(a) {
				return false
			}
		}
		return n.Ns == "" // library calls may be stateful; keep them serial
	case *sqlpp.Unary:
		return exprRowFree(n.X)
	case *sqlpp.Binary:
		return exprRowFree(n.L) && exprRowFree(n.R)
	case *sqlpp.CaseExpr:
		if n.Operand != nil && !exprRowFree(n.Operand) {
			return false
		}
		for _, w := range n.Whens {
			if !exprRowFree(w.When) || !exprRowFree(w.Then) {
				return false
			}
		}
		return n.Else == nil || exprRowFree(n.Else)
	}
	return false
}

// safeParallelPred reports whether a predicate may be evaluated inside
// concurrent scan workers: pure structural/comparison expressions over
// the row and constants. Calls (UDFs may be stateful), EXISTS, and
// subqueries stay on the consumer side.
func safeParallelPred(e sqlpp.Expr) bool {
	switch n := e.(type) {
	case nil:
		return true
	case *sqlpp.Literal, *sqlpp.Ident, *sqlpp.Param:
		return true
	case *sqlpp.FieldAccess:
		return safeParallelPred(n.Base)
	case *sqlpp.IndexAccess:
		return safeParallelPred(n.Base) && safeParallelPred(n.Index)
	case *sqlpp.Unary:
		return safeParallelPred(n.X)
	case *sqlpp.Binary:
		return safeParallelPred(n.L) && safeParallelPred(n.R)
	case *sqlpp.CaseExpr:
		if n.Operand != nil && !safeParallelPred(n.Operand) {
			return false
		}
		for _, w := range n.Whens {
			if !safeParallelPred(w.When) || !safeParallelPred(w.Then) {
				return false
			}
		}
		return n.Else == nil || safeParallelPred(n.Else)
	case *sqlpp.In:
		return safeParallelPred(n.X) && safeParallelPred(n.Coll)
	case *sqlpp.ArrayCtor:
		for _, el := range n.Elems {
			if !safeParallelPred(el) {
				return false
			}
		}
		return true
	case *sqlpp.ObjectCtor:
		for _, f := range n.Fields {
			if !safeParallelPred(f.Val) {
				return false
			}
		}
		return true
	}
	return false
}

// --- sargable predicate extraction ---

// pickIndexRange scans the WHERE conjuncts for comparisons of
// alias.field against a constant where field carries a secondary
// B-tree index, and folds every such conjunct on the chosen field into
// one [lo, hi] key range. The first indexed field found wins.
func pickIndexRange(ctx *Context, ds *lsm.Dataset, alias string, where sqlpp.Expr) (field, idxName string, idxs []*lsm.BTreeIndex, lo, hi index.Bound, ok bool) {
	lo, hi = index.Unbounded(), index.Unbounded()
	for _, conj := range splitConjuncts(where) {
		f, op, v, sok := sargable(conj, alias, ctx.Params)
		if !sok {
			continue
		}
		if field == "" {
			name, insts := ds.BTreeIndexForField(f)
			if name == "" {
				continue
			}
			field, idxName, idxs = f, name, insts
		} else if f != field {
			continue
		}
		switch op {
		case "=":
			lo = tightenLo(lo, index.Include(v))
			hi = tightenHi(hi, index.Include(v))
		case ">":
			lo = tightenLo(lo, index.Exclude(v))
		case ">=":
			lo = tightenLo(lo, index.Include(v))
		case "<":
			hi = tightenHi(hi, index.Exclude(v))
		case "<=":
			hi = tightenHi(hi, index.Include(v))
		}
	}
	return field, idxName, idxs, lo, hi, field != ""
}

// sargable matches one conjunct of the shape `alias.field OP const` or
// `const OP alias.field` (OP flipped), where const is a literal or a
// bound parameter. Unknown-valued constants are not sargable (the
// predicate is uniformly NULL; the full scan handles it).
func sargable(e sqlpp.Expr, alias string, params map[string]adm.Value) (field, op string, val adm.Value, ok bool) {
	b, isBin := e.(*sqlpp.Binary)
	if !isBin {
		return "", "", adm.Value{}, false
	}
	switch b.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return "", "", adm.Value{}, false
	}
	if f, fok := aliasField(b.L, alias); fok {
		if v, vok := constOperand(b.R, params); vok && !v.IsUnknown() {
			return f, b.Op, v, true
		}
		return "", "", adm.Value{}, false
	}
	if f, fok := aliasField(b.R, alias); fok {
		if v, vok := constOperand(b.L, params); vok && !v.IsUnknown() {
			return f, flipOp(b.Op), v, true
		}
	}
	return "", "", adm.Value{}, false
}

func aliasField(e sqlpp.Expr, alias string) (string, bool) {
	fa, ok := e.(*sqlpp.FieldAccess)
	if !ok {
		return "", false
	}
	base, ok := fa.Base.(*sqlpp.Ident)
	if !ok || base.Name != alias {
		return "", false
	}
	return fa.Field, true
}

func constOperand(e sqlpp.Expr, params map[string]adm.Value) (adm.Value, bool) {
	switch n := e.(type) {
	case *sqlpp.Literal:
		return n.Val, true
	case *sqlpp.Param:
		v, ok := params[n.Name]
		return v, ok
	}
	return adm.Value{}, false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// tightenLo keeps the more restrictive (greater, or exclusive on a
// tie) of two lower bounds.
func tightenLo(a, b index.Bound) index.Bound {
	if a.Unbounded() {
		return b
	}
	if b.Unbounded() {
		return a
	}
	ak, _ := a.Key()
	bk, _ := b.Key()
	switch c := adm.Compare(bk, ak); {
	case c > 0:
		return b
	case c < 0:
		return a
	case !b.Inclusive():
		return b
	}
	return a
}

// tightenHi keeps the more restrictive (smaller, or exclusive on a
// tie) of two upper bounds.
func tightenHi(a, b index.Bound) index.Bound {
	if a.Unbounded() {
		return b
	}
	if b.Unbounded() {
		return a
	}
	ak, _ := a.Key()
	bk, _ := b.Key()
	switch c := adm.Compare(bk, ak); {
	case c < 0:
		return b
	case c > 0:
		return a
	case !b.Inclusive():
		return b
	}
	return a
}
