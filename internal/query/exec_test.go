package query

import (
	"fmt"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/sqlpp"
)

func execStr(t *testing.T, cat Catalog, env *Env, src string) adm.Value {
	t.Helper()
	e, err := sqlpp.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sel, ok := e.(*sqlpp.SelectExpr)
	if !ok {
		t.Fatalf("%q is not a query", src)
	}
	v, err := ExecuteSelect(NewContext(cat), env, sel)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return v
}

func ratingsCatalog(t *testing.T) *testCatalog {
	cat := newTestCatalog()
	cat.addDataset(t, "SafetyRatings", "country_code", 2,
		obj("country_code", adm.String("US"), "safety_rating", adm.String("3")),
		obj("country_code", adm.String("FR"), "safety_rating", adm.String("4")),
		obj("country_code", adm.String("DE"), "safety_rating", adm.String("4")),
		obj("country_code", adm.String("BR"), "safety_rating", adm.String("2")),
	)
	return cat
}

func TestExecuteSelectValueFromDataset(t *testing.T) {
	cat := ratingsCatalog(t)
	got := execStr(t, cat, nil, `SELECT VALUE s.country_code FROM SafetyRatings s ORDER BY s.country_code`)
	arr := got.ArrayVal()
	if len(arr) != 4 || arr[0].StringVal() != "BR" || arr[3].StringVal() != "US" {
		t.Errorf("got %v", got)
	}
}

func TestExecuteSelectWhere(t *testing.T) {
	cat := ratingsCatalog(t)
	got := execStr(t, cat, nil,
		`SELECT VALUE s.country_code FROM SafetyRatings s WHERE s.safety_rating = "4" ORDER BY s.country_code`)
	arr := got.ArrayVal()
	if len(arr) != 2 || arr[0].StringVal() != "DE" || arr[1].StringVal() != "FR" {
		t.Errorf("got %v", got)
	}
}

func TestExecuteSelectProjectionNames(t *testing.T) {
	cat := ratingsCatalog(t)
	got := execStr(t, cat, nil,
		`SELECT s.country_code, s.safety_rating AS rating FROM SafetyRatings s WHERE s.country_code = "US"`)
	row := got.Index(0)
	if row.Field("country_code").StringVal() != "US" {
		t.Errorf("derived name failed: %v", row)
	}
	if row.Field("rating").StringVal() != "3" {
		t.Errorf("alias failed: %v", row)
	}
}

func TestExecuteSelectStarSplice(t *testing.T) {
	cat := ratingsCatalog(t)
	got := execStr(t, cat, nil,
		`SELECT s.*, "extra" AS note FROM SafetyRatings s WHERE s.country_code = "US"`)
	row := got.Index(0)
	if row.Field("country_code").StringVal() != "US" || row.Field("note").StringVal() != "extra" {
		t.Errorf("star splice failed: %v", row)
	}
	// Bare star.
	got = execStr(t, cat, nil, `SELECT * FROM SafetyRatings s WHERE s.country_code = "US"`)
	if got.Index(0).Field("safety_rating").StringVal() != "3" {
		t.Errorf("bare star failed: %v", got)
	}
}

func TestExecuteGroupByWithAggregates(t *testing.T) {
	cat := newTestCatalog()
	var recs []adm.Value
	pops := []struct {
		country, religion string
		pop               int64
	}{
		{"US", "A", 100}, {"US", "B", 50}, {"FR", "A", 70},
		{"FR", "C", 30}, {"FR", "B", 10}, {"DE", "A", 5},
	}
	for i, p := range pops {
		recs = append(recs, obj("rid", adm.String(fmt.Sprintf("r%d", i)),
			"country_name", adm.String(p.country),
			"religion_name", adm.String(p.religion),
			"population", adm.Int(p.pop)))
	}
	cat.addDataset(t, "ReligiousPopulations", "rid", 2, recs...)

	got := execStr(t, cat, nil, `
		SELECT r.country_name AS country, count(*) AS cnt, sum(r.population) AS total
		FROM ReligiousPopulations r
		GROUP BY r.country_name
		ORDER BY r.country_name`)
	arr := got.ArrayVal()
	if len(arr) != 3 {
		t.Fatalf("groups = %d, want 3", len(arr))
	}
	fr := arr[1]
	if fr.Field("country").StringVal() != "FR" || fr.Field("cnt").IntVal() != 3 || fr.Field("total").IntVal() != 110 {
		t.Errorf("FR group = %v", fr)
	}
}

func TestExecuteGroupByAlias(t *testing.T) {
	cat := newTestCatalog()
	cat.addDataset(t, "Persons", "person_id", 2,
		obj("person_id", adm.String("p1"), "ethnicity", adm.String("a")),
		obj("person_id", adm.String("p2"), "ethnicity", adm.String("a")),
		obj("person_id", adm.String("p3"), "ethnicity", adm.String("b")),
	)
	got := execStr(t, cat, nil, `
		SELECT ethnicity, count(*) AS n FROM Persons p
		GROUP BY p.ethnicity AS ethnicity ORDER BY ethnicity`)
	arr := got.ArrayVal()
	if len(arr) != 2 || arr[0].Field("ethnicity").StringVal() != "a" || arr[0].Field("n").IntVal() != 2 {
		t.Errorf("got %v", got)
	}
}

func TestExecuteAggregateWithoutGroupBy(t *testing.T) {
	cat := ratingsCatalog(t)
	got := execStr(t, cat, nil, `SELECT count(*) AS n FROM SafetyRatings s`)
	if len(got.ArrayVal()) != 1 || got.Index(0).Field("n").IntVal() != 4 {
		t.Errorf("got %v", got)
	}
	// The paper's Q2 pattern: (SELECT sum(...) ...)[0].
	env := Bind(nil, "t", obj("country", adm.String("US")))
	cat2 := newTestCatalog()
	cat2.addDataset(t, "ReligiousPopulations", "rid", 2,
		obj("rid", adm.String("1"), "country_name", adm.String("US"), "population", adm.Int(10)),
		obj("rid", adm.String("2"), "country_name", adm.String("US"), "population", adm.Int(20)),
		obj("rid", adm.String("3"), "country_name", adm.String("FR"), "population", adm.Int(99)),
	)
	v := evalStr(t, cat2, env, `(SELECT sum(r.population) FROM ReligiousPopulations r
		WHERE r.country_name = t.country)[0]`)
	if v.Field("$1").IntVal() != 30 {
		t.Errorf("sum row = %v", v)
	}
}

func TestExecuteOrderByDescLimit(t *testing.T) {
	cat := newTestCatalog()
	cat.addDataset(t, "ReligiousPopulations", "rid", 2,
		obj("rid", adm.String("1"), "religion_name", adm.String("A"), "population", adm.Int(10)),
		obj("rid", adm.String("2"), "religion_name", adm.String("B"), "population", adm.Int(30)),
		obj("rid", adm.String("3"), "religion_name", adm.String("C"), "population", adm.Int(20)),
		obj("rid", adm.String("4"), "religion_name", adm.String("D"), "population", adm.Int(5)),
	)
	got := execStr(t, cat, nil, `
		SELECT VALUE r.religion_name FROM ReligiousPopulations r
		ORDER BY r.population DESC LIMIT 3`)
	arr := got.ArrayVal()
	if len(arr) != 3 || arr[0].StringVal() != "B" || arr[1].StringVal() != "C" || arr[2].StringVal() != "A" {
		t.Errorf("got %v", got)
	}
}

func TestExecuteJoinTwoDatasets(t *testing.T) {
	cat := newTestCatalog()
	cat.addDataset(t, "L", "id", 2,
		obj("id", adm.Int(1), "k", adm.String("x")),
		obj("id", adm.Int(2), "k", adm.String("y")),
	)
	cat.addDataset(t, "R", "id", 2,
		obj("id", adm.Int(10), "k", adm.String("x"), "v", adm.Int(100)),
		obj("id", adm.Int(11), "k", adm.String("x"), "v", adm.Int(200)),
		obj("id", adm.Int(12), "k", adm.String("z"), "v", adm.Int(300)),
	)
	got := execStr(t, cat, nil, `
		SELECT l.id AS lid, r.v AS v FROM L l, R r
		WHERE l.k = r.k ORDER BY r.v`)
	arr := got.ArrayVal()
	if len(arr) != 2 || arr[0].Field("v").IntVal() != 100 || arr[1].Field("v").IntVal() != 200 {
		t.Errorf("join = %v", got)
	}
}

func TestExecuteFromLetAndBindingCollection(t *testing.T) {
	cat := newTestCatalog()
	// The Fig 10 pattern: LET batch then FROM batch.
	got := execStr(t, cat, nil, `
		LET TweetsBatch = [{"id": 1, "v": 10}, {"id": 2, "v": 20}]
		SELECT VALUE tweet.v + 1 FROM TweetsBatch tweet`)
	arr := got.ArrayVal()
	if len(arr) != 2 || arr[0].IntVal() != 11 || arr[1].IntVal() != 21 {
		t.Errorf("got %v", got)
	}
	// FROM-position LET (Fig 9 pattern).
	got = execStr(t, cat, nil, `
		LET xs = [{"n": 1}, {"n": 2}, {"n": 3}]
		SELECT VALUE doubled FROM xs x LET doubled = x.n * 2 WHERE doubled > 2`)
	arr = got.ArrayVal()
	if len(arr) != 2 || arr[0].IntVal() != 4 || arr[1].IntVal() != 6 {
		t.Errorf("from-let = %v", got)
	}
}

func TestExecuteDistinct(t *testing.T) {
	cat := ratingsCatalog(t)
	got := execStr(t, cat, nil, `SELECT DISTINCT s.safety_rating AS r FROM SafetyRatings s ORDER BY s.safety_rating`)
	if len(got.ArrayVal()) != 3 {
		t.Errorf("distinct = %v", got)
	}
}

func TestExecuteExistsAndInSubquery(t *testing.T) {
	cat := newTestCatalog()
	cat.addDataset(t, "SensitiveWords", "id", 2,
		obj("id", adm.Int(1), "country", adm.String("US"), "word", adm.String("bomb")),
		obj("id", adm.Int(2), "country", adm.String("FR"), "word", adm.String("attaque")),
	)
	env := Bind(nil, "tweet", obj("country", adm.String("US"), "text", adm.String("the bomb squad")))
	v := evalStr(t, cat, env, `EXISTS(SELECT s FROM SensitiveWords s
		WHERE tweet.country = s.country AND contains(tweet.text, s.word))`)
	if !v.BoolVal() {
		t.Error("EXISTS should be true")
	}
	env2 := Bind(nil, "tweet", obj("country", adm.String("DE"), "text", adm.String("hello")))
	v = evalStr(t, cat, env2, `EXISTS(SELECT s FROM SensitiveWords s
		WHERE tweet.country = s.country AND contains(tweet.text, s.word))`)
	if v.BoolVal() {
		t.Error("EXISTS should be false")
	}
	v = evalStr(t, cat, env, `tweet.country IN (SELECT VALUE s.country FROM SensitiveWords s)`)
	if !v.BoolVal() {
		t.Error("IN subquery should be true")
	}
}

func TestExecuteAnalyticalQueryFig9Shape(t *testing.T) {
	cat := newTestCatalog()
	cat.addDataset(t, "SensitiveWords", "id", 2,
		obj("id", adm.Int(1), "country", adm.String("US"), "word", adm.String("bomb")),
	)
	cat.addDataset(t, "Tweets", "id", 2,
		obj("id", adm.Int(1), "country", adm.String("US"), "text", adm.String("bomb here")),
		obj("id", adm.Int(2), "country", adm.String("US"), "text", adm.String("sunny day")),
		obj("id", adm.Int(3), "country", adm.String("FR"), "text", adm.String("bomb alert")),
		obj("id", adm.Int(4), "country", adm.String("US"), "text", adm.String("bomb threat")),
	)
	cat.addSQLFunction(t, `CREATE FUNCTION tweetSafetyCheck(tweet) {
		LET safety_check_flag = CASE
			EXISTS(SELECT s FROM SensitiveWords s
				WHERE tweet.country = s.country AND contains(tweet.text, s.word))
			WHEN true THEN "Red" ELSE "Green" END
		SELECT tweet.*, safety_check_flag
	};`)
	got := execStr(t, cat, nil, `
		SELECT tweet.country Country, count(tweet) Num
		FROM Tweets tweet
		LET enrichedTweet = tweetSafetyCheck(tweet)[0]
		WHERE enrichedTweet.safety_check_flag = "Red"
		GROUP BY tweet.country`)
	arr := got.ArrayVal()
	if len(arr) != 1 {
		t.Fatalf("rows = %v", got)
	}
	if arr[0].Field("Country").StringVal() != "US" || arr[0].Field("Num").IntVal() != 2 {
		t.Errorf("analytics = %v", arr[0])
	}
}

func TestExecuteErrorUnknownFromSource(t *testing.T) {
	cat := newTestCatalog()
	e, _ := sqlpp.ParseExpr(`SELECT VALUE x FROM NoSuchDataset x`)
	if _, err := ExecuteSelect(NewContext(cat), nil, e.(*sqlpp.SelectExpr)); err == nil {
		t.Error("unknown dataset should fail")
	}
}
