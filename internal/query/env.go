// Package query implements SQL++ evaluation: a scalar expression
// evaluator with the paper's builtin function library, a generic query
// executor (scan → join → filter → group → order → limit → project), and
// the enrichment planner that compiles a stateful UDF into the per-batch
// build phase / per-record probe phase split described in Section 4.3 of
// the paper.
package query

import (
	"context"
	"fmt"
	"sync"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// Env is an immutable binding environment: a persistent linked chain of
// name→value pairs. Binding returns a child env, so tuple fan-out during
// joins shares structure.
type Env struct {
	parent *Env
	name   string
	val    adm.Value
}

// Bind returns a child environment with one extra binding. parent may be
// nil.
func Bind(parent *Env, name string, val adm.Value) *Env {
	return &Env{parent: parent, name: name, val: val}
}

// Lookup resolves a name, innermost binding first.
func (e *Env) Lookup(name string) (adm.Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.val, true
		}
	}
	return adm.Value{}, false
}

// Function is a catalog-registered UDF: either a SQL++ body or a native
// Go implementation (the "Java UDF" analog).
type Function struct {
	Name   string
	Params []string
	Body   sqlpp.Expr                           // SQL++ functions
	Native func([]adm.Value) (adm.Value, error) // native functions
}

// Catalog resolves names during evaluation. The cluster's metadata node
// implements it; tests use lightweight fakes.
type Catalog interface {
	// Dataset resolves a dataset name.
	Dataset(name string) (*lsm.Dataset, bool)
	// Function resolves a UDF name.
	Function(name string) (*Function, bool)
	// Native resolves a namespaced library function (testlib#removeSpecial).
	Native(ns, name string) (func([]adm.Value) (adm.Value, error), bool)
}

// Context carries evaluation state shared across one logical evaluation
// scope (one query, or one computing-job invocation). Dataset snapshots
// are pinned on first access, which implements the paper's record-level
// consistency rule: an invocation sees updates made before it first
// accesses the dataset, and later updates wait for the next invocation.
type Context struct {
	Catalog Catalog

	// Params are the statement parameters bound for this evaluation:
	// $name references resolve here (positional $1, $2, ... bind under
	// "1", "2", ...). Nil means the statement was bound without
	// arguments; referencing a parameter then fails at evaluation.
	Params map[string]adm.Value

	// Std is the caller's cancellation context. Row-producing loops poll
	// it via Err so a cancelled statement stops between rows rather than
	// running to completion. Nil means "never cancelled".
	Std context.Context

	// DisableIndexScan and DisableParallelScan switch off the
	// corresponding planner rewrites (see plan_select.go). They exist so
	// benchmarks and plan tests can compare strategies on one dataset;
	// production callers leave them false.
	DisableIndexScan    bool
	DisableParallelScan bool

	mu        sync.Mutex
	snapshots map[string][]*lsm.Snapshot
}

// NewContext returns a fresh evaluation context over the catalog.
func NewContext(cat Catalog) *Context {
	return &Context{Catalog: cat, snapshots: make(map[string][]*lsm.Snapshot)}
}

// Err reports the cancellation state of the caller's context.
func (c *Context) Err() error {
	if c.Std == nil {
		return nil
	}
	return c.Std.Err()
}

// Pin returns the pinned per-partition snapshots of the named dataset,
// taking them on first access.
func (c *Context) Pin(name string) ([]*lsm.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if snaps, ok := c.snapshots[name]; ok {
		return snaps, nil
	}
	ds, ok := c.Catalog.Dataset(name)
	if !ok {
		return nil, fmt.Errorf("query: unknown dataset %q", name)
	}
	snaps := ds.SnapshotAll()
	c.snapshots[name] = snaps
	return snaps, nil
}

// evalState threads per-evaluation context through the evaluator without
// mutating shared state: st.group carries the current GROUP BY group for
// aggregate calls; st.prepared intercepts compiled subqueries during
// enrichment probing. evalState is passed by value.
type evalState struct {
	ctx      *Context
	group    []*Env
	groupSet bool // true inside a GROUP BY context, even for empty groups
	aggVals  map[*sqlpp.Call]adm.Value
	prepared *PreparedEnrich
	depth    int
}

func (st evalState) withGroup(group []*Env) evalState {
	st.group = group
	st.groupSet = true
	st.aggVals = nil
	return st
}

// withAggVals enters a streaming-aggregation context: aggregate calls
// resolve to pre-accumulated values instead of re-scanning a buffered
// group (the streaming hash aggregate never keeps raw tuples around).
func (st evalState) withAggVals(vals map[*sqlpp.Call]adm.Value) evalState {
	st.group = nil
	st.groupSet = true
	st.aggVals = vals
	return st
}

func (st evalState) noGroup() evalState {
	st.group = nil
	st.groupSet = false
	st.aggVals = nil
	return st
}

func (st evalState) deeper() (evalState, error) {
	st.depth++
	if st.depth > 64 {
		return st, fmt.Errorf("query: expression nesting too deep (recursive UDF?)")
	}
	return st, nil
}
