package query

import (
	"fmt"
	"strings"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/lsm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// drainCursor pulls a RowCursor to exhaustion.
func drainCursor(t *testing.T, rc *RowCursor) []adm.Value {
	t.Helper()
	var out []adm.Value
	for {
		v, ok, err := rc.Next()
		if err != nil {
			t.Fatalf("cursor error: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func cursorStr(t *testing.T, cat Catalog, env *Env, src string) []adm.Value {
	t.Helper()
	e, err := sqlpp.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sel, ok := e.(*sqlpp.SelectExpr)
	if !ok {
		t.Fatalf("%q is not a query", src)
	}
	rc, err := ExecuteSelectCursor(NewContext(cat), env, sel)
	if err != nil {
		t.Fatalf("open %q: %v", src, err)
	}
	return drainCursor(t, rc)
}

// TestCursorMatchesEagerExecutor runs a spread of query shapes through
// both the streaming cursor and the eager executor and requires
// identical results — the streaming path must be a pure execution-
// strategy change, never a semantic one.
func TestCursorMatchesEagerExecutor(t *testing.T) {
	cat := newTestCatalog()
	var recs []adm.Value
	for i := 0; i < 300; i++ {
		recs = append(recs, obj(
			"id", adm.Int(int64(i)),
			"grp", adm.String(fmt.Sprintf("g%d", i%7)),
			"score", adm.Int(int64(i%50)),
		))
	}
	cat.addDataset(t, "Events", "id", 3, recs...)

	queries := []string{
		// Pipeline-able shapes (true streaming).
		`SELECT VALUE e FROM Events e`,
		`SELECT VALUE e.id FROM Events e WHERE e.score > 25`,
		`SELECT VALUE e.id FROM Events e LIMIT 10`,
		`SELECT VALUE e.id FROM Events e WHERE e.grp = "g3" LIMIT 4`,
		`SELECT e.id AS id, e.score AS s FROM Events e WHERE e.score < 5`,
		`SELECT e.*, "x" AS tag FROM Events e LIMIT 3`,
		`SELECT VALUE [e.id, b] FROM Events e LET b = e.score * 2 WHERE b > 90`,
		`LET cutoff = 40 SELECT VALUE e.id FROM Events e WHERE e.score > cutoff`,
		`SELECT VALUE x FROM [1, 2, 3] x`,
		`SELECT VALUE e.id FROM Events e WHERE e.id IN [1, 5, 250]`,
		// Blocking shapes (streamed: top-k heap, hash aggregate, dedupe).
		`SELECT VALUE e.id FROM Events e ORDER BY e.id DESC LIMIT 5`,
		`SELECT e.grp AS g, count(*) AS n FROM Events e GROUP BY e.grp ORDER BY e.grp`,
		`SELECT DISTINCT e.grp FROM Events e ORDER BY e.grp`,
		`SELECT VALUE count(*) FROM Events e WHERE e.score = 0`,
	}
	for _, q := range queries {
		want := execStr(t, cat, nil, q).ArrayVal()
		got := cursorStr(t, cat, nil, q)
		if len(got) != len(want) {
			t.Errorf("%s:\n cursor %d rows, eager %d rows", q, len(got), len(want))
			continue
		}
		for i := range got {
			if !adm.Equal(got[i], want[i]) {
				t.Errorf("%s:\n row %d: cursor %s, eager %s", q, i, got[i], want[i])
				break
			}
		}
	}
}

// TestCursorErrorsSurface verifies evaluation errors arrive through the
// cursor rather than being swallowed mid-stream.
func TestCursorErrorsSurface(t *testing.T) {
	cat := ratingsCatalog(t)
	e, err := sqlpp.ParseExpr(`SELECT VALUE nosuchfn(s) FROM SafetyRatings s`)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ExecuteSelectCursor(NewContext(cat), nil, e.(*sqlpp.SelectExpr))
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := rc.Next()
	if ok || err == nil {
		t.Fatalf("Next = %v, %v; want error", ok, err)
	}
	// The cursor stays exhausted afterwards.
	if _, ok, _ := rc.Next(); ok {
		t.Fatal("cursor yielded rows after an error")
	}
}

// TestCursorParams exercises $param binding through the Context.
func TestCursorParams(t *testing.T) {
	cat := ratingsCatalog(t)
	e, err := sqlpp.ParseExpr(`SELECT VALUE s.country_code FROM SafetyRatings s WHERE s.safety_rating = $want`)
	if err != nil {
		t.Fatal(err)
	}
	sel := e.(*sqlpp.SelectExpr)

	ctx := NewContext(cat)
	ctx.Params = map[string]adm.Value{"want": adm.String("4")}
	rc, err := ExecuteSelectCursor(ctx, nil, sel)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainCursor(t, rc)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}

	// Unbound parameter surfaces as an evaluation error naming it.
	rc2, err := ExecuteSelectCursor(NewContext(cat), nil, sel)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := rc2.Next()
	if ok || err == nil {
		t.Fatal("unbound parameter should error")
	}
	if got := err.Error(); !strings.Contains(got, "$want") {
		t.Errorf("error should name the parameter: %v", got)
	}
}

// TestCursorLimitStopsScan proves LIMIT-k pulls only a prefix: the scan
// touches O(k) records, measured through the partition scan counters
// (a full materializing scan would still be one Scan stat, so we check
// allocations instead — see BenchmarkQueryStream — and here check that
// an abandoned cursor leaves no side effects and a fresh query still
// sees everything).
func TestCursorLimitStopsScan(t *testing.T) {
	cat := newTestCatalog()
	var recs []adm.Value
	for i := 0; i < 5000; i++ {
		recs = append(recs, obj("id", adm.Int(int64(i))))
	}
	ds := cat.addDataset(t, "Big", "id", 2, recs...)

	got := cursorStr(t, cat, nil, `SELECT VALUE b.id FROM Big b LIMIT 7`)
	if len(got) != 7 {
		t.Fatalf("limit rows = %d", len(got))
	}
	if ds.Len() != 5000 {
		t.Fatalf("dataset disturbed: %d", ds.Len())
	}
	all := cursorStr(t, cat, nil, `SELECT VALUE b.id FROM Big b`)
	if len(all) != 5000 {
		t.Fatalf("full scan rows = %d", len(all))
	}
}

// BenchmarkQueryStream is the acceptance benchmark for the streaming
// redesign: SELECT ... LIMIT k over datasets of very different sizes
// must allocate O(k) per query, independent of dataset size. Compare
// the size=10k and size=100k allocs/op columns — they should match.
func BenchmarkQueryStream(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("limit10/size=%d", size), func(b *testing.B) {
			cat := newTestCatalog()
			ds, err := lsm.NewDataset("Big", nil, "id", 4, lsm.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			recs := make([]adm.Value, size)
			for i := range recs {
				recs[i] = obj("id", adm.Int(int64(i)), "score", adm.Int(int64(i%97)))
			}
			if err := ds.UpsertBatch(recs); err != nil {
				b.Fatal(err)
			}
			cat.datasets["Big"] = ds
			e, err := sqlpp.ParseExpr(`SELECT VALUE t.id FROM Big t WHERE t.score >= 0 LIMIT 10`)
			if err != nil {
				b.Fatal(err)
			}
			sel := e.(*sqlpp.SelectExpr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc, err := ExecuteSelectCursor(NewContext(cat), nil, sel)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := rc.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					n++
				}
				if n != 10 {
					b.Fatalf("rows = %d", n)
				}
			}
		})
	}
}
