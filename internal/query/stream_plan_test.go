package query

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/ideadb/idea/internal/adm"
	"github.com/ideadb/idea/internal/sqlpp"
)

// planCatalog builds the streaming-planner fixture: dataset R over 4
// partitions, primary key id, a low-cardinality indexed field cat
// ("c0".."c7", secondary B-tree index by_cat), and score in [0,97).
func planCatalog(t *testing.T, n int) *testCatalog {
	t.Helper()
	cat := newTestCatalog()
	var recs []adm.Value
	for i := 0; i < n; i++ {
		recs = append(recs, obj(
			"id", adm.Int(int64(i)),
			"cat", adm.String(fmt.Sprintf("c%d", i%8)),
			"score", adm.Int(int64(i%97)),
		))
	}
	ds := cat.addDataset(t, "R", "id", 4, recs...)
	if err := ds.CreateFieldBTreeIndex("by_cat", "cat"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustSel(t *testing.T, q string) *sqlpp.SelectExpr {
	t.Helper()
	e, err := sqlpp.ParseExpr(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel, ok := e.(*sqlpp.SelectExpr)
	if !ok {
		t.Fatalf("%q is not a query", q)
	}
	return sel
}

func openCursor(t *testing.T, ctx *Context, q string) *RowCursor {
	t.Helper()
	rc, err := ExecuteSelectCursor(ctx, nil, mustSel(t, q))
	if err != nil {
		t.Fatalf("open %q: %v", q, err)
	}
	return rc
}

// sameMultiset compares result sets order-insensitively, keyed by
// rendering.
func sameMultiset(a, b []adm.Value) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, v := range a {
		counts[fmt.Sprint(v)]++
	}
	for _, v := range b {
		counts[fmt.Sprint(v)]--
	}
	for _, n := range counts {
		if n != 0 {
			return false
		}
	}
	return true
}

// TestPlannerShapes pins which access path each query shape plans:
// index pushdown, parallel partition scan (with its merge order and
// pushed filter), bounded top-k vs full sort, streaming aggregation,
// and the serial fallback. Asserting on Plan() keeps these decisions
// test-enforced rather than timing-inferred. Every SELECT shape
// streams — there is no eager fallback inside the cursor.
func TestPlannerShapes(t *testing.T) {
	cat := planCatalog(t, 400)
	cases := []struct {
		q    string
		want []string // required Plan() substrings
		not  []string // forbidden Plan() substrings
	}{
		{
			q:    `SELECT VALUE r.id FROM R r WHERE r.cat = "c3"`,
			want: []string{"iscan(R.by_cat on cat)", "filter"},
			not:  []string{"pscan", "scan(R)"},
		},
		{
			q:    `SELECT VALUE r.id FROM R r WHERE r.cat >= "c2" AND r.cat <= "c4" AND r.score > 50`,
			want: []string{"iscan(R.by_cat on cat)", "filter"},
		},
		{
			// No indexed field in WHERE: parallel scan with the filter
			// pushed into the scan workers.
			q:    `SELECT VALUE r.id FROM R r WHERE r.score > 90`,
			want: []string{"pscan(R,partition,4)+filter"},
			not:  []string{"iscan", "→filter"},
		},
		{
			// ORDER BY pk ASC: key-order merge replaces the sort.
			q:    `SELECT VALUE r.id FROM R r ORDER BY r.id LIMIT 5`,
			want: []string{"pscan(R,key,4)", "ordered-by-key", "limit(5)"},
			not:  []string{"topk", "sort"},
		},
		{
			q:    `SELECT VALUE r.id FROM R r ORDER BY r.score DESC, r.id LIMIT 5`,
			want: []string{"pscan(R,partition,4)", "topk(5)"},
			not:  []string{"sort"},
		},
		{
			q:    `SELECT VALUE r.id FROM R r ORDER BY r.score DESC, r.id`,
			want: []string{"sort"},
			not:  []string{"topk"},
		},
		{
			q:    `SELECT r.cat AS c, count(*) AS n FROM R r GROUP BY r.cat`,
			want: []string{"pscan(R,partition,4)", "aggregate(1keys,1aggs)"},
		},
		{
			// Order-insensitive aggregate, no GROUP BY: unordered fan-in.
			q:    `SELECT VALUE count(*) FROM R r`,
			want: []string{"pscan(R,unordered,4)", "aggregate(0keys,1aggs)"},
		},
		{
			// sum folds floats in arrival order: stays partition-order.
			q:    `SELECT VALUE sum(r.score) FROM R r`,
			want: []string{"pscan(R,partition,4)"},
			not:  []string{"unordered"},
		},
		{
			// LIMIT without a blocking operator: serial scan, stops early.
			q:    `SELECT VALUE r.id FROM R r LIMIT 3`,
			want: []string{"scan(R)", "limit(3)"},
			not:  []string{"pscan", "iscan"},
		},
		{
			q:    `SELECT DISTINCT r.cat FROM R r`,
			want: []string{"pscan(R,partition,4)", "distinct"},
		},
		{
			// DISTINCT limits distinct output rows, so the heap stays
			// unbounded even under LIMIT.
			q:    `SELECT DISTINCT r.cat FROM R r ORDER BY r.cat LIMIT 3`,
			want: []string{"sort", "distinct", "limit(3)"},
			not:  []string{"topk"},
		},
	}
	for _, tc := range cases {
		rc := openCursor(t, NewContext(cat), tc.q)
		plan := rc.Plan()
		for _, w := range tc.want {
			if !strings.Contains(plan, w) {
				t.Errorf("%s:\n plan %q missing %q", tc.q, plan, w)
			}
		}
		for _, n := range tc.not {
			if strings.Contains(plan, n) {
				t.Errorf("%s:\n plan %q must not contain %q", tc.q, plan, n)
			}
		}
		rc.Close()
	}

	// Planner knobs force the fallbacks benchmarks compare against.
	ctx := NewContext(cat)
	ctx.DisableIndexScan = true
	if plan := openCursor(t, ctx, `SELECT VALUE r.id FROM R r WHERE r.cat = "c3"`).Plan(); strings.Contains(plan, "iscan") {
		t.Errorf("DisableIndexScan ignored: %q", plan)
	}
	ctx2 := NewContext(cat)
	ctx2.DisableParallelScan = true
	if plan := openCursor(t, ctx2, `SELECT VALUE count(*) FROM R r`).Plan(); !strings.Contains(plan, "scan(R)") || strings.Contains(plan, "pscan") {
		t.Errorf("DisableParallelScan ignored: %q", plan)
	}
}

// TestIndexScanMatchesFullScan is the index-use acceptance check: the
// same query planned through the secondary index and through a full
// scan must return the same rows, with the plans proving which path
// ran. Speed is benchmarked (BenchmarkQueryIndexPushdown); index use
// and correctness are asserted here, not inferred from timing.
func TestIndexScanMatchesFullScan(t *testing.T) {
	cat := planCatalog(t, 400)
	queries := []string{
		`SELECT VALUE r.id FROM R r WHERE r.cat = "c5"`,
		`SELECT VALUE r FROM R r WHERE r.cat = "c0" AND r.score < 30`,
		`SELECT VALUE r.id FROM R r WHERE r.cat > "c5"`,
		`SELECT VALUE r.id FROM R r WHERE r.cat >= "c2" AND r.cat < "c4"`,
		`SELECT VALUE r.id FROM R r WHERE r.cat = "nosuch"`,
		`SELECT r.cat AS c, count(*) AS n FROM R r WHERE r.cat <= "c1" GROUP BY r.cat`,
	}
	for _, q := range queries {
		idx := openCursor(t, NewContext(cat), q)
		if !strings.Contains(idx.Plan(), "iscan(R.by_cat on cat)") {
			t.Fatalf("%s:\n expected index scan, plan %q", q, idx.Plan())
		}
		got := drainCursor(t, idx)

		full := NewContext(cat)
		full.DisableIndexScan = true
		fc := openCursor(t, full, q)
		if strings.Contains(fc.Plan(), "iscan") {
			t.Fatalf("%s:\n full-scan control still uses index: %q", q, fc.Plan())
		}
		want := drainCursor(t, fc)

		// The index resolves postings in secondary-key order, not
		// primary-key order, so compare as multisets.
		if !sameMultiset(got, want) {
			t.Errorf("%s:\n index %v\n full  %v", q, got, want)
		}
	}
}

// TestCursorMatchesEagerRandomized is the randomized differential
// harness: a seeded generator produces query shapes across the whole
// planner surface (index pushdown, parallel merge orders, top-k,
// streaming aggregation, DISTINCT) and every one must agree with the
// eager executor. Order is compared exactly unless the plan reorders
// input without an ORDER BY to re-impose it (index scans emit
// postings order), in which case the multisets must agree.
func TestCursorMatchesEagerRandomized(t *testing.T) {
	cat := planCatalog(t, 400)
	rng := rand.New(rand.NewSource(20260808)) // fixed seed: deterministic corpus

	selects := []string{
		`VALUE r.id`,
		`VALUE r`,
		`r.id AS id, r.score AS s`,
		`VALUE [r.cat, r.score]`,
	}
	aggSelects := []string{
		`VALUE count(*)`,
		`count(*) AS n, sum(r.score) AS s`,
		`min(r.score) AS lo, max(r.score) AS hi, avg(r.score) AS mean`,
	}
	wheres := []string{
		``,
		`WHERE r.cat = "c3"`,
		`WHERE r.score > 60`,
		`WHERE r.cat = "c5" AND r.score < 40`,
		`WHERE r.cat >= "c2" AND r.cat <= "c4"`,
		`WHERE r.score >= 10 AND r.score <= 20 AND r.cat < "c6"`,
	}
	// Every ORDER BY list is total (it ends in the unique pk), so a
	// LIMIT prefix is well-defined and exact comparison stays valid
	// even when the scan reordered its input.
	orders := []string{
		`ORDER BY r.id`,
		`ORDER BY r.score DESC, r.id`,
		`ORDER BY r.cat, r.id DESC`,
	}

	gen := func() string {
		where := wheres[rng.Intn(len(wheres))]
		switch rng.Intn(4) {
		case 0: // pipeline shapes; no LIMIT without ORDER BY (the prefix would be scan-order-dependent)
			return fmt.Sprintf(`SELECT %s FROM R r %s`, selects[rng.Intn(len(selects))], where)
		case 1: // order by, sometimes limited
			q := fmt.Sprintf(`SELECT %s FROM R r %s %s`,
				selects[rng.Intn(len(selects))], where, orders[rng.Intn(len(orders))])
			if rng.Intn(2) == 0 {
				q += fmt.Sprintf(` LIMIT %d`, rng.Intn(25))
			}
			return q
		case 2: // grouped
			q := fmt.Sprintf(`SELECT r.cat AS c, count(*) AS n, sum(r.score) AS s, avg(r.score) AS m FROM R r %s GROUP BY r.cat`, where)
			if rng.Intn(2) == 0 {
				q += ` ORDER BY r.cat`
				if rng.Intn(2) == 0 {
					q += fmt.Sprintf(` LIMIT %d`, 1+rng.Intn(6))
				}
			}
			return q
		default: // global aggregates / distinct
			if rng.Intn(2) == 0 {
				return fmt.Sprintf(`SELECT %s FROM R r %s`, aggSelects[rng.Intn(len(aggSelects))], where)
			}
			q := fmt.Sprintf(`SELECT DISTINCT r.cat FROM R r %s`, where)
			if rng.Intn(2) == 0 {
				q += ` ORDER BY r.cat`
				if rng.Intn(2) == 0 {
					q += ` LIMIT 3`
				}
			}
			return q
		}
	}

	for i := 0; i < 200; i++ {
		q := gen()
		rc := openCursor(t, NewContext(cat), q)
		plan := rc.Plan()
		if plan == "" {
			t.Fatalf("%s: empty plan", q)
		}
		got := drainCursor(t, rc)
		want := execStr(t, cat, nil, q).ArrayVal()

		exact := !strings.Contains(plan, "iscan(") || strings.Contains(q, "ORDER BY")
		if exact {
			if len(got) != len(want) {
				t.Errorf("%s:\n plan %s\n cursor %d rows, eager %d rows", q, plan, len(got), len(want))
				continue
			}
			for j := range got {
				if !adm.Equal(got[j], want[j]) {
					t.Errorf("%s:\n plan %s\n row %d: cursor %s, eager %s", q, plan, j, got[j], want[j])
					break
				}
			}
		} else if !sameMultiset(got, want) {
			t.Errorf("%s:\n plan %s\n cursor %v\n eager %v", q, plan, got, want)
		}
	}
}

// TestCursorCloseMidParallelScan closes cursors partway through every
// parallel shape (and again, for idempotence) — scan workers must
// stop and join rather than leak or race. Under -race this is the
// teardown acceptance test.
func TestCursorCloseMidParallelScan(t *testing.T) {
	cat := planCatalog(t, 2000)
	for _, q := range []string{
		`SELECT VALUE r.id FROM R r`,                                // pscan partition-order
		`SELECT VALUE r.id FROM R r ORDER BY r.id LIMIT 5`,          // pscan key-order merge
		`SELECT VALUE count(*) FROM R r`,                            // pscan unordered fan-in
		`SELECT VALUE r.id FROM R r WHERE r.score > 3`,              // pscan + pushed filter
		`SELECT VALUE r.id FROM R r ORDER BY r.score, r.id LIMIT 7`, // top-k over pscan
	} {
		rc := openCursor(t, NewContext(cat), q)
		if !strings.Contains(rc.Plan(), "pscan(") {
			t.Fatalf("%s: expected parallel scan, plan %q", q, rc.Plan())
		}
		for i := 0; i < 3; i++ {
			if _, ok, err := rc.Next(); err != nil {
				t.Fatalf("%s: %v", q, err)
			} else if !ok {
				break
			}
		}
		rc.Close()
		rc.Close() // idempotent
		if _, ok, err := rc.Next(); ok || err != nil {
			t.Fatalf("%s: Next after Close = %v, %v", q, ok, err)
		}
	}
}

// TestCursorContextCancellation cancels the caller's context
// mid-iteration and before the first pull; the cursor must stop with
// context.Canceled and tear its scan down.
func TestCursorContextCancellation(t *testing.T) {
	cat := planCatalog(t, 2000)

	std, cancel := context.WithCancel(context.Background())
	ctx := NewContext(cat)
	ctx.Std = std
	rc := openCursor(t, ctx, `SELECT VALUE r.id FROM R r`)
	if _, ok, err := rc.Next(); !ok || err != nil {
		t.Fatalf("first pull: %v, %v", ok, err)
	}
	cancel()
	if _, ok, err := rc.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, %v; want context.Canceled", ok, err)
	}
	// Exhausted afterwards, not erroring forever.
	if _, ok, err := rc.Next(); ok || err != nil {
		t.Fatalf("Next after cancelled close = %v, %v", ok, err)
	}

	// Cancellation observed even when the first pull runs a blocking
	// build (streaming aggregation drains the scan inside next).
	std2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	ctx2 := NewContext(cat)
	ctx2.Std = std2
	rc2 := openCursor(t, ctx2, `SELECT r.cat AS c, count(*) AS n FROM R r GROUP BY r.cat`)
	if _, ok, err := rc2.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("grouped Next under cancelled ctx = %v, %v; want context.Canceled", ok, err)
	}
}
